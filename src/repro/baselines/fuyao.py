"""FUYAO baseline data plane (Liu et al., ASPLOS'24).

FUYAO moves inter-node data with **one-sided RDMA writes** into a
dedicated RDMA-only memory pool on the receiver, avoiding data races by
isolating that pool from local shared-memory processing — at the price
of (a) a receiver-side copy from the RDMA pool into the tenant's local
pool (Fig. 2 (2)) and (b) a continuously polling engine that "takes up
one core each on every worker node" (§4.3.1).

Reproduced mechanics:

* each engine owns a per-tenant RDMA-only slot pool, registered with
  the RNIC; peers acquire slot *credits* at warm-up (ring-style flow
  control);
* TX: take a credit, post a one-sided WRITE into the remote slot;
* arrival detection is FaRM-style memory polling — the receiving
  engine notices the write one poll interval later, copies the payload
  into the destination tenant's pool, hands the descriptor to the
  function, and returns the credit to the sender.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..dataplane import Message
from ..dne.engine import NetworkEngine
from ..dne.routing import RouteError
from ..memory import Buffer, BufferDescriptor, MemoryPool, PoolExhausted, RemoteMap
from ..rdma import Completion, Opcode, WorkRequest
from ..sim import Store

__all__ = ["FuyaoEngine"]


class _OneSidedArrival:
    """A landed one-sided write awaiting the receiver's polling loop."""

    __slots__ = ("slot", "message", "length", "tenant", "origin")

    def __init__(self, slot: Buffer, message: Message, length: int,
                 tenant: str, origin: str):
        self.slot = slot
        self.message = message
        self.length = length
        self.tenant = tenant
        self.origin = origin


class FuyaoEngine(NetworkEngine):
    """FUYAO's polling engine: one-sided writes + receiver-side copy."""

    #: slots granted to each (peer, tenant) pair
    SLOTS_PER_PEER = 32

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: tenant -> dedicated RDMA-only pool on this node
        self.rdma_pools: Dict[str, MemoryPool] = {}
        #: (remote node, tenant) -> Store of credit slot buffers
        self._credits: Dict[Tuple[str, str], Store] = {}
        #: whether the receiver-side copy hits cache or main memory
        self.copy_cached = True

    # -- engine placement: a pinned, always-polling host core ------------------
    def _allocate_core(self):
        return self.node.cpu.allocate_pinned(f"{self.name}-poller")

    def _control_pool(self):
        return self.node.cpu

    def _ingest_cost_us(self) -> float:
        return self.cost.sk_msg_interrupt_us + self.channel.ingest_cost_us()

    def _egress_cost_us(self) -> float:
        return self.cost.sk_msg_us

    # -- tenant setup: create and register the dedicated RDMA pool ----------------
    def setup_tenant(self, tenant: str, pool: MemoryPool,
                     remote_map: Optional[RemoteMap] = None,
                     weight: float = 1.0, recv_buffers: int = 64) -> None:
        super().setup_tenant(tenant, pool, remote_map, weight, recv_buffers)
        rdma_pool = MemoryPool(
            self.env, tenant, self.SLOTS_PER_PEER * 4, pool.buffer_bytes,
            name=f"rdmapool:{self.node.name}:{tenant}",
        )
        self.rdma_pools[tenant] = rdma_pool
        self.rnic.register_pool(rdma_pool)

    def _core_thread(self, epoch):
        """Acquire slot credits from each peer's RDMA pool (ring setup)."""
        yield from self.conn_mgr.cp.bootstrap()  # connection setup
        for remote_node, tenant in self._warm_peers:
            yield from self.conn_mgr.warm_up(remote_node, tenant, 1)
            peer = self.peers.get(remote_node)
            if peer is None or tenant not in peer.rdma_pools:
                continue
            credits = Store(self.env, name=f"credits:{self.node.name}->{remote_node}:{tenant}")
            for _ in range(self.SLOTS_PER_PEER):
                try:
                    slot = peer.rdma_pools[tenant].get(f"slots:{self.node.name}")
                except PoolExhausted:
                    break
                credits.put(slot)
            self._credits[(remote_node, tenant)] = credits

    # -- TX: one-sided write into a remote slot -----------------------------------------
    def _handle_tx(self, tenant: str, src_fn: str, descriptor: BufferDescriptor):
        cost = self.cost
        buffer = descriptor.buffer
        buffer.check_owner(self.agent)
        message = descriptor.message
        if message.owner is not None:
            message.check_owner(self.agent)
        dst_fn = message.dst
        try:
            dst_node = self.routes.node_for(dst_fn)
        except RouteError:
            # Destination withdrawn (failover/scale-down): drop safely.
            self.stats.dropped += 1
            message.settle(False)
            message.retire(self.agent)
            self._recycle(buffer, tenant)
            return
        peer = self.peers.get(dst_node)
        yield from self._run(self._ingest_cost_us() + cost.fuyao_tx_us)
        credits = self._credits.get((dst_node, tenant))
        if credits is None:
            raise RuntimeError(
                f"{self.name}: no slot ring to {dst_node} for tenant {tenant!r}"
            )
        slot = yield credits.get()  # ring flow control
        qp = yield from self.conn_mgr.get_connection(dst_node, tenant)
        wr = WorkRequest(
            opcode=Opcode.WRITE,
            buffer=buffer,
            length=descriptor.length,
            remote_buffer=slot,
            message=message,
            expected_owner=f"slots:{self.node.name}",
        )
        write_proc = self.rnic.post_send(qp, wr)
        self.stats.tx_messages += 1
        self.stats.tx_bytes += descriptor.length
        self.stats.tenant_meter(tenant).record(self.env.now)

        length = descriptor.length
        this = self

        def _notify():
            # Wait for the write to land, then for the receiver's
            # polling loop to notice it (FaRM-style poll interval).
            yield write_proc
            yield this.env.timeout(this.cost.onesided_poll_interval_us)
            message.transfer(this.agent, peer.agent)
            peer.inject_event(
                "onesided",
                _OneSidedArrival(slot, message, length, tenant,
                                 this.node.name),
            )

        self.env.process(_notify(), name=f"{self.name}-notify")

    # -- CQ: recycle source buffers on write completion -------------------------------------
    def _handle_cqe(self, completion: Completion):
        if completion.opcode == Opcode.WRITE:
            yield from self._run(self.cost.mempool_op_us)
            buffer = completion.buffer
            if buffer is not None and buffer.pool is not None:
                buffer.pool.put(buffer, self.agent)
                self.stats.recycled += 1
            return
        yield from super()._handle_cqe(completion)

    # -- RX: poll detection, copy out of the RDMA pool, deliver ---------------------------------
    def _handle_event(self, event):
        kind, payload = event
        if kind == "onesided":
            yield from self._handle_onesided(payload)
        else:
            yield from super()._handle_event(event)

    def _handle_onesided(self, arrival: _OneSidedArrival):
        cost = self.cost
        slot = arrival.slot
        tenant = arrival.tenant
        length = arrival.length
        message = arrival.message
        # Poll detection + the receiver-side copy out of the dedicated
        # RDMA pool into the tenant's local pool (the extra copy of
        # Fig. 2 (2)), executed on the pinned polling core.
        yield from self._run(
            cost.fuyao_rx_us + cost.copy_time(length, cached=self.copy_cached)
        )
        state = self._tenants.get(tenant)
        if state is None:
            message.retire(self.agent)
            return
        try:
            buffer = state.pool.get(self.agent)
        except PoolExhausted:
            buffer = yield from state.pool.get_wait(self.agent)
        buffer.write(self.agent, slot.payload, length)
        self.stats.rx_messages += 1
        self.stats.rx_bytes += length
        # Return the slot credit to the sender (piggybacked control
        # message: one fabric hop later the sender may reuse the slot).
        origin = arrival.origin
        peer = self.peers.get(origin)

        def _return_credit():
            yield self.env.timeout(cost.rdma_base_latency_us)
            credits = peer._credits.get((self.node.name, tenant))
            if credits is not None:
                credits.put(slot)

        self.env.process(_return_credit(), name=f"{self.name}-credit")
        dst_fn = message.dst or None
        if dst_fn is None or dst_fn not in self.channel.endpoints:
            message.retire(self.agent)
            buffer.pool.put(buffer, self.agent)
            return
        buffer.transfer(self.agent, f"fn:{dst_fn}")
        descriptor = BufferDescriptor(buffer=buffer, length=length,
                                      message=message)
        message.transfer(self.agent, f"fn:{dst_fn}")
        self.channel.dne_send(dst_fn, descriptor)
