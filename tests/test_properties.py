"""Property-based tests (hypothesis) on core data structures & invariants."""

from hypothesis import given, settings, strategies as st

from repro.dne import DwrrScheduler, FcfsScheduler
from repro.memory import MemoryPool, OwnershipError, PoolExhausted
from repro.sim import Environment, Resource, Store


# ---------------------------------------------------------------------------
# Store: FIFO, conservation
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(), max_size=60))
def test_store_fifo_property(items):
    env = Environment()
    store = Store(env)
    for item in items:
        store.put_nowait(item)
    out = []
    while True:
        value = store.try_get()
        if value is None:
            break
        out.append(value)
    assert out == items


@given(st.lists(st.sampled_from(["put", "get"]), max_size=100))
def test_store_conservation_under_op_sequences(ops):
    env = Environment()
    store = Store(env)
    put, got = 0, 0
    for op in ops:
        if op == "put":
            store.put_nowait(put)
            put += 1
        else:
            if store.try_get() is not None:
                got += 1
    assert put - got == len(store.items)


# ---------------------------------------------------------------------------
# Resource: capacity invariant under random hold times
# ---------------------------------------------------------------------------

@given(
    capacity=st.integers(min_value=1, max_value=5),
    holds=st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1,
                   max_size=20),
)
@settings(max_examples=30, deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    res = Resource(env, capacity=capacity)
    peak = [0]

    def worker(duration):
        req = res.request()
        yield req
        peak[0] = max(peak[0], res.count)
        yield env.timeout(duration)
        res.release(req)

    for duration in holds:
        env.process(worker(duration))
    env.run()
    assert peak[0] <= capacity
    assert res.count == 0


# ---------------------------------------------------------------------------
# MemoryPool: buffer conservation, exclusive ownership
# ---------------------------------------------------------------------------

@given(st.lists(st.sampled_from(["get", "put", "transfer"]), max_size=200))
def test_mempool_conservation(ops):
    env = Environment()
    pool = MemoryPool(env, "t", 8, 256)
    held = []
    for op in ops:
        if op == "get":
            try:
                held.append(pool.get("a"))
            except PoolExhausted:
                assert len(held) == 8
        elif op == "put" and held:
            buf = held.pop()
            pool.put(buf, buf.owner)
        elif op == "transfer" and held:
            held[-1].transfer(held[-1].owner, f"agent{len(held)}")
    assert pool.free_count + len(held) == 8
    # every held buffer still rejects access by a stranger
    for buf in held:
        try:
            buf.read("stranger")
            assert False, "ownership not enforced"
        except OwnershipError:
            pass


@given(st.data())
def test_mempool_no_double_ownership(data):
    """A buffer handed off is never accessible to the previous owner."""
    env = Environment()
    pool = MemoryPool(env, "t", 4, 64)
    buf = pool.get("owner0")
    chain = ["owner0"]
    for i in range(data.draw(st.integers(min_value=1, max_value=10))):
        new_owner = f"owner{i + 1}"
        buf.transfer(chain[-1], new_owner)
        chain.append(new_owner)
    for stale in chain[:-1]:
        try:
            buf.write(stale, "x", 1)
            assert False
        except OwnershipError:
            pass
    buf.write(chain[-1], "ok", 2)


# ---------------------------------------------------------------------------
# DWRR: weighted fairness and work conservation as properties
# ---------------------------------------------------------------------------

@given(
    weights=st.lists(st.floats(min_value=0.5, max_value=8.0), min_size=2,
                     max_size=5),
    size=st.integers(min_value=64, max_value=4096),
)
@settings(max_examples=25, deadline=None)
def test_dwrr_shares_proportional_to_weights(weights, size):
    sched = DwrrScheduler(quantum_bytes=256)
    tenants = [f"t{i}" for i in range(len(weights))]
    for tenant, weight in zip(tenants, weights):
        sched.set_weight(tenant, weight)
        for j in range(3000):
            sched.enqueue(tenant, j, nbytes=size)
    served = {tenant: 0 for tenant in tenants}
    rounds = 1500
    for _ in range(rounds):
        tenant, _ = sched.dequeue()
        served[tenant] += 1
    total_weight = sum(weights)
    for tenant, weight in zip(tenants, weights):
        expected = rounds * weight / total_weight
        assert abs(served[tenant] - expected) <= max(10, 0.15 * expected)


@given(st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.integers(min_value=1, max_value=5000)),
    max_size=120,
))
def test_dwrr_work_conserving_property(messages):
    sched = DwrrScheduler(quantum_bytes=128)
    for tenant, nbytes in messages:
        sched.enqueue(tenant, nbytes, nbytes=nbytes)
    out = 0
    while sched.pending():
        assert sched.dequeue() is not None
        out += 1
    assert out == len(messages)


@given(st.lists(
    st.tuples(st.sampled_from(["x", "y"]), st.text(max_size=3)),
    max_size=80,
))
def test_fcfs_preserves_global_order(messages):
    sched = FcfsScheduler()
    for tenant, item in messages:
        sched.enqueue(tenant, item)
    out = []
    while sched.pending():
        out.append(sched.dequeue())
    assert out == messages


@given(st.lists(st.integers(min_value=1, max_value=8192), min_size=1,
                max_size=60))
def test_dwrr_single_tenant_preserves_fifo(sizes):
    sched = DwrrScheduler(quantum_bytes=512)
    for i, nbytes in enumerate(sizes):
        sched.enqueue("only", i, nbytes=nbytes)
    out = []
    while sched.pending():
        out.append(sched.dequeue()[1])
    assert out == list(range(len(sizes)))

# ---------------------------------------------------------------------------
# Fault injection: seeded replay determinism
# ---------------------------------------------------------------------------

from repro.faults import FaultInjector, FaultPlan  # noqa: E402
from repro.platform import ElasticPlatform, FunctionSpec, Tenant  # noqa: E402
from repro.sim import RngRegistry  # noqa: E402


def _fault_scenario(seed, crash_at, down_us):
    """A small crash/restart run; returns every observable of the run."""
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1"))
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    spec = FunctionSpec("svc", "t1", work_us=5)
    plat.deploy_service(spec, "worker1")
    plat.scale_out(spec, "worker0")
    plat.start()

    rng = RngRegistry(seed).stream("workload")
    stats = {"ok": 0, "err": 0}

    def load():
        yield env.timeout(30_000)
        for _ in range(20):
            yield env.timeout(rng.uniform(200.0, 2_000.0))
            try:
                yield from client.invoke("svc", "ping", 64)
                stats["ok"] += 1
            except Exception:
                stats["err"] += 1

    env.process(load(), name="load")
    plan = FaultPlan().node_crash(crash_at, "worker1", down_us=down_us)
    injector = FaultInjector(env, plat, plan)
    injector.start()
    env.run(until=250_000)
    reconnects = sum(e.conn_mgr.reconnects_succeeded
                     for e in plat.engines.values())
    return (tuple(injector.timeline), stats["ok"], stats["err"], reconnects)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    crash_at=st.floats(min_value=40_000.0, max_value=100_000.0),
    down_us=st.floats(min_value=20_000.0, max_value=80_000.0),
)
@settings(max_examples=6, deadline=None)
def test_fault_replay_is_deterministic(seed, crash_at, down_us):
    """Same seed + same plan -> identical timeline and counters."""
    first = _fault_scenario(seed, crash_at, down_us)
    second = _fault_scenario(seed, crash_at, down_us)
    assert first == second


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    burn=st.integers(min_value=0, max_value=64),
)
@settings(max_examples=20, deadline=None)
def test_fault_stream_never_perturbs_workload_draws(seed, burn):
    """Draws on the dedicated faults stream leave other streams intact."""
    clean, faulty = RngRegistry(seed), RngRegistry(seed)
    for _ in range(burn):
        faulty.faults().random()
    assert ([clean.stream("workload").random() for _ in range(16)]
            == [faulty.stream("workload").random() for _ in range(16)])


# ---------------------------------------------------------------------------
# Dataplane message: single-owner transfer/retire protocol
# ---------------------------------------------------------------------------

from repro.config import CostModel  # noqa: E402
from repro.dataplane import Message, OwnershipViolation  # noqa: E402
from repro.hw import build_cluster  # noqa: E402
from repro.rdma import (  # noqa: E402
    ConnectionManager,
    Opcode,
    RdmaFabric,
    WorkRequest,
)

_AGENTS = st.sampled_from(["fn:a", "fn:b", "dne:w0", "rnic:w0", "ingress"])


@given(st.lists(_AGENTS, min_size=1, max_size=12))
def test_message_has_exactly_one_owner_at_any_instant(hops):
    """After every handoff exactly one agent passes check_owner."""
    universe = ["fn:a", "fn:b", "dne:w0", "rnic:w0", "ingress"]
    msg = Message(rid=1, owner=hops[0])
    current = hops[0]
    for nxt in hops[1:]:
        msg.transfer(current, nxt)
        current = nxt
        owners = []
        for agent in universe:
            try:
                msg.check_owner(agent)
                owners.append(agent)
            except OwnershipViolation:
                pass
        assert owners == [current]


@given(st.lists(_AGENTS, min_size=2, max_size=10, unique=True))
def test_message_use_after_transfer_raises(chain):
    """Every stale holder is locked out of transfer AND retire."""
    msg = Message(rid=2, owner=chain[0])
    for prev, nxt in zip(chain, chain[1:]):
        msg.transfer(prev, nxt)
    for stale in chain[:-1]:
        try:
            msg.transfer(stale, "thief")
            assert False, "stale transfer accepted"
        except OwnershipViolation:
            pass
        try:
            msg.retire(stale)
            assert False, "stale retire accepted"
        except OwnershipViolation:
            pass
    msg.retire(chain[-1])


@given(_AGENTS, _AGENTS)
def test_message_double_retire_raises(first, second):
    msg = Message(rid=3, owner=first)
    msg.retire(first)
    try:
        msg.retire(second)
        assert False, "double retire accepted"
    except OwnershipViolation:
        pass
    # a retired message also rejects any further handoff
    try:
        msg.transfer(first, second)
        assert False, "use after retire accepted"
    except OwnershipViolation:
        pass


@given(_AGENTS)
def test_unowned_message_is_adopted_by_first_transfer(adopter):
    """Driver-built headers enter the protocol at their first handoff."""
    msg = Message(rid=4)
    assert msg.owner is None
    msg.transfer("whoever", adopter)
    assert msg.owner == adopter
    # from then on the protocol is strict
    try:
        msg.transfer("whoever", "elsewhere")
        assert False
    except OwnershipViolation:
        pass


@given(st.integers(min_value=1, max_value=8))
@settings(max_examples=10, deadline=None)
def test_fault_flushed_cqes_retire_exactly_once(n_posts):
    """Messages on fault-flushed WRs are reclaimed by the poller once."""
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    r0 = fabric.install_rnic("worker0")
    fabric.install_rnic("worker1")
    cm = ConnectionManager(env, fabric, "worker0", cost)
    holder = {}

    def setup():
        holder["qps"] = yield from cm.warm_up("worker1", "t", 1)

    env.process(setup())
    env.run()
    qp = holder["qps"][0]
    cm.fail_connections(cause="injected")

    messages = []
    for i in range(n_posts):
        # the engine hands each header to its RNIC before posting
        message = Message(rid=i, owner="dne:w0")
        message.transfer("dne:w0", "rnic:worker0")
        messages.append(message)
        r0.post_send(qp, WorkRequest(opcode=Opcode.SEND, length=8,
                                     message=message))
    env.run()

    flushed = []
    while True:
        completion = r0.cq.try_get()
        if completion is None:
            break
        assert completion.flushed and not completion.ok
        flushed.append(completion)
    assert len(flushed) == n_posts
    for completion in flushed:
        # poller reclaims: transfer off the dead QP, retire exactly once
        completion.message.transfer("rnic:worker0", "dne:w0")
        completion.message.retire("dne:w0")
    for message in messages:
        assert message.retired
        try:
            message.retire("dne:w0")
            assert False, "double retire accepted"
        except OwnershipViolation:
            pass


# ---------------------------------------------------------------------------
# Live migration: handover conserves every in-flight message
# ---------------------------------------------------------------------------

@given(
    n=st.integers(min_value=1, max_value=12),
    migrate_at=st.floats(min_value=30_100.0, max_value=38_000.0),
    state_kb=st.integers(min_value=16, max_value=4096),
)
@settings(max_examples=15, deadline=None)
def test_migration_handover_conserves_inflight_messages(n, migrate_at,
                                                        state_kb):
    """Every request in flight across a handover is served exactly once.

    Whatever instant the freeze lands at — requests queued, parked,
    mid-handler, or arriving as stragglers after the flip — each one
    is answered exactly once (double-retire or loss would surface as
    an OwnershipViolation or a missing reply), no engine drops
    anything, and every buffer returns to its pool.
    """
    from repro.platform import FunctionSpec, ServerlessPlatform, Tenant

    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("t1", pool_buffers=512))
    caller = plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")
    svc = plat.deploy(FunctionSpec("svc", "t1", work_us=200, concurrency=2),
                      "worker1")
    plat.start()

    replies = []

    def client(i):
        yield env.timeout(30_000 + i * 137.0)
        reply = yield from caller.invoke("svc", f"m{i}", 64)
        replies.append(reply.payload)

    for i in range(n):
        env.process(client(i))

    def mig():
        yield env.timeout(migrate_at)
        record = yield from plat.migrate_function(
            "svc", "worker0", state_bytes=state_kb * 1024)
        assert record.ok

    env.process(mig())

    # Steady-state pool levels before any traffic: the engines' recv
    # rings hold buffers permanently, so "all transients returned"
    # means matching this baseline, not a completely full pool.
    baseline = {}

    def snapshot():
        yield env.timeout(29_000)
        for node in plat.runtimes:
            baseline[node] = plat.pool_for("t1", node).free_count

    env.process(snapshot())
    env.run(until=2_000_000)

    assert sorted(replies) == sorted(f"m{i}" for i in range(n))
    assert svc.handled == n
    for engine in plat.engines.values():
        assert engine.stats.dropped == 0
    for node in plat.runtimes:
        assert plat.pool_for("t1", node).free_count == baseline[node]
