"""Property-based tests (hypothesis) on core data structures & invariants."""

from hypothesis import given, settings, strategies as st

from repro.dne import DwrrScheduler, FcfsScheduler
from repro.memory import MemoryPool, OwnershipError, PoolExhausted
from repro.sim import Environment, Resource, Store


# ---------------------------------------------------------------------------
# Store: FIFO, conservation
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(), max_size=60))
def test_store_fifo_property(items):
    env = Environment()
    store = Store(env)
    for item in items:
        store.put_nowait(item)
    out = []
    while True:
        value = store.try_get()
        if value is None:
            break
        out.append(value)
    assert out == items


@given(st.lists(st.sampled_from(["put", "get"]), max_size=100))
def test_store_conservation_under_op_sequences(ops):
    env = Environment()
    store = Store(env)
    put, got = 0, 0
    for op in ops:
        if op == "put":
            store.put_nowait(put)
            put += 1
        else:
            if store.try_get() is not None:
                got += 1
    assert put - got == len(store.items)


# ---------------------------------------------------------------------------
# Resource: capacity invariant under random hold times
# ---------------------------------------------------------------------------

@given(
    capacity=st.integers(min_value=1, max_value=5),
    holds=st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1,
                   max_size=20),
)
@settings(max_examples=30, deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    res = Resource(env, capacity=capacity)
    peak = [0]

    def worker(duration):
        req = res.request()
        yield req
        peak[0] = max(peak[0], res.count)
        yield env.timeout(duration)
        res.release(req)

    for duration in holds:
        env.process(worker(duration))
    env.run()
    assert peak[0] <= capacity
    assert res.count == 0


# ---------------------------------------------------------------------------
# MemoryPool: buffer conservation, exclusive ownership
# ---------------------------------------------------------------------------

@given(st.lists(st.sampled_from(["get", "put", "transfer"]), max_size=200))
def test_mempool_conservation(ops):
    env = Environment()
    pool = MemoryPool(env, "t", 8, 256)
    held = []
    for op in ops:
        if op == "get":
            try:
                held.append(pool.get("a"))
            except PoolExhausted:
                assert len(held) == 8
        elif op == "put" and held:
            buf = held.pop()
            pool.put(buf, buf.owner)
        elif op == "transfer" and held:
            held[-1].transfer(held[-1].owner, f"agent{len(held)}")
    assert pool.free_count + len(held) == 8
    # every held buffer still rejects access by a stranger
    for buf in held:
        try:
            buf.read("stranger")
            assert False, "ownership not enforced"
        except OwnershipError:
            pass


@given(st.data())
def test_mempool_no_double_ownership(data):
    """A buffer handed off is never accessible to the previous owner."""
    env = Environment()
    pool = MemoryPool(env, "t", 4, 64)
    buf = pool.get("owner0")
    chain = ["owner0"]
    for i in range(data.draw(st.integers(min_value=1, max_value=10))):
        new_owner = f"owner{i + 1}"
        buf.transfer(chain[-1], new_owner)
        chain.append(new_owner)
    for stale in chain[:-1]:
        try:
            buf.write(stale, "x", 1)
            assert False
        except OwnershipError:
            pass
    buf.write(chain[-1], "ok", 2)


# ---------------------------------------------------------------------------
# DWRR: weighted fairness and work conservation as properties
# ---------------------------------------------------------------------------

@given(
    weights=st.lists(st.floats(min_value=0.5, max_value=8.0), min_size=2,
                     max_size=5),
    size=st.integers(min_value=64, max_value=4096),
)
@settings(max_examples=25, deadline=None)
def test_dwrr_shares_proportional_to_weights(weights, size):
    sched = DwrrScheduler(quantum_bytes=256)
    tenants = [f"t{i}" for i in range(len(weights))]
    for tenant, weight in zip(tenants, weights):
        sched.set_weight(tenant, weight)
        for j in range(3000):
            sched.enqueue(tenant, j, nbytes=size)
    served = {tenant: 0 for tenant in tenants}
    rounds = 1500
    for _ in range(rounds):
        tenant, _ = sched.dequeue()
        served[tenant] += 1
    total_weight = sum(weights)
    for tenant, weight in zip(tenants, weights):
        expected = rounds * weight / total_weight
        assert abs(served[tenant] - expected) <= max(10, 0.15 * expected)


@given(st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.integers(min_value=1, max_value=5000)),
    max_size=120,
))
def test_dwrr_work_conserving_property(messages):
    sched = DwrrScheduler(quantum_bytes=128)
    for tenant, nbytes in messages:
        sched.enqueue(tenant, nbytes, nbytes=nbytes)
    out = 0
    while sched.pending():
        assert sched.dequeue() is not None
        out += 1
    assert out == len(messages)


@given(st.lists(
    st.tuples(st.sampled_from(["x", "y"]), st.text(max_size=3)),
    max_size=80,
))
def test_fcfs_preserves_global_order(messages):
    sched = FcfsScheduler()
    for tenant, item in messages:
        sched.enqueue(tenant, item)
    out = []
    while sched.pending():
        out.append(sched.dequeue())
    assert out == messages


@given(st.lists(st.integers(min_value=1, max_value=8192), min_size=1,
                max_size=60))
def test_dwrr_single_tenant_preserves_fifo(sizes):
    sched = DwrrScheduler(quantum_bytes=512)
    for i, nbytes in enumerate(sizes):
        sched.enqueue("only", i, nbytes=nbytes)
    out = []
    while sched.pending():
        out.append(sched.dequeue()[1])
    assert out == list(range(len(sizes)))
