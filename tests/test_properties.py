"""Property-based tests (hypothesis) on core data structures & invariants."""

from hypothesis import given, settings, strategies as st

from repro.dne import DwrrScheduler, FcfsScheduler
from repro.memory import MemoryPool, OwnershipError, PoolExhausted
from repro.sim import Environment, Resource, Store


# ---------------------------------------------------------------------------
# Store: FIFO, conservation
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(), max_size=60))
def test_store_fifo_property(items):
    env = Environment()
    store = Store(env)
    for item in items:
        store.put_nowait(item)
    out = []
    while True:
        value = store.try_get()
        if value is None:
            break
        out.append(value)
    assert out == items


@given(st.lists(st.sampled_from(["put", "get"]), max_size=100))
def test_store_conservation_under_op_sequences(ops):
    env = Environment()
    store = Store(env)
    put, got = 0, 0
    for op in ops:
        if op == "put":
            store.put_nowait(put)
            put += 1
        else:
            if store.try_get() is not None:
                got += 1
    assert put - got == len(store.items)


# ---------------------------------------------------------------------------
# Resource: capacity invariant under random hold times
# ---------------------------------------------------------------------------

@given(
    capacity=st.integers(min_value=1, max_value=5),
    holds=st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1,
                   max_size=20),
)
@settings(max_examples=30, deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    res = Resource(env, capacity=capacity)
    peak = [0]

    def worker(duration):
        req = res.request()
        yield req
        peak[0] = max(peak[0], res.count)
        yield env.timeout(duration)
        res.release(req)

    for duration in holds:
        env.process(worker(duration))
    env.run()
    assert peak[0] <= capacity
    assert res.count == 0


# ---------------------------------------------------------------------------
# MemoryPool: buffer conservation, exclusive ownership
# ---------------------------------------------------------------------------

@given(st.lists(st.sampled_from(["get", "put", "transfer"]), max_size=200))
def test_mempool_conservation(ops):
    env = Environment()
    pool = MemoryPool(env, "t", 8, 256)
    held = []
    for op in ops:
        if op == "get":
            try:
                held.append(pool.get("a"))
            except PoolExhausted:
                assert len(held) == 8
        elif op == "put" and held:
            buf = held.pop()
            pool.put(buf, buf.owner)
        elif op == "transfer" and held:
            held[-1].transfer(held[-1].owner, f"agent{len(held)}")
    assert pool.free_count + len(held) == 8
    # every held buffer still rejects access by a stranger
    for buf in held:
        try:
            buf.read("stranger")
            assert False, "ownership not enforced"
        except OwnershipError:
            pass


@given(st.data())
def test_mempool_no_double_ownership(data):
    """A buffer handed off is never accessible to the previous owner."""
    env = Environment()
    pool = MemoryPool(env, "t", 4, 64)
    buf = pool.get("owner0")
    chain = ["owner0"]
    for i in range(data.draw(st.integers(min_value=1, max_value=10))):
        new_owner = f"owner{i + 1}"
        buf.transfer(chain[-1], new_owner)
        chain.append(new_owner)
    for stale in chain[:-1]:
        try:
            buf.write(stale, "x", 1)
            assert False
        except OwnershipError:
            pass
    buf.write(chain[-1], "ok", 2)


# ---------------------------------------------------------------------------
# DWRR: weighted fairness and work conservation as properties
# ---------------------------------------------------------------------------

@given(
    weights=st.lists(st.floats(min_value=0.5, max_value=8.0), min_size=2,
                     max_size=5),
    size=st.integers(min_value=64, max_value=4096),
)
@settings(max_examples=25, deadline=None)
def test_dwrr_shares_proportional_to_weights(weights, size):
    sched = DwrrScheduler(quantum_bytes=256)
    tenants = [f"t{i}" for i in range(len(weights))]
    for tenant, weight in zip(tenants, weights):
        sched.set_weight(tenant, weight)
        for j in range(3000):
            sched.enqueue(tenant, j, nbytes=size)
    served = {tenant: 0 for tenant in tenants}
    rounds = 1500
    for _ in range(rounds):
        tenant, _ = sched.dequeue()
        served[tenant] += 1
    total_weight = sum(weights)
    for tenant, weight in zip(tenants, weights):
        expected = rounds * weight / total_weight
        assert abs(served[tenant] - expected) <= max(10, 0.15 * expected)


@given(st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.integers(min_value=1, max_value=5000)),
    max_size=120,
))
def test_dwrr_work_conserving_property(messages):
    sched = DwrrScheduler(quantum_bytes=128)
    for tenant, nbytes in messages:
        sched.enqueue(tenant, nbytes, nbytes=nbytes)
    out = 0
    while sched.pending():
        assert sched.dequeue() is not None
        out += 1
    assert out == len(messages)


@given(st.lists(
    st.tuples(st.sampled_from(["x", "y"]), st.text(max_size=3)),
    max_size=80,
))
def test_fcfs_preserves_global_order(messages):
    sched = FcfsScheduler()
    for tenant, item in messages:
        sched.enqueue(tenant, item)
    out = []
    while sched.pending():
        out.append(sched.dequeue())
    assert out == messages


@given(st.lists(st.integers(min_value=1, max_value=8192), min_size=1,
                max_size=60))
def test_dwrr_single_tenant_preserves_fifo(sizes):
    sched = DwrrScheduler(quantum_bytes=512)
    for i, nbytes in enumerate(sizes):
        sched.enqueue("only", i, nbytes=nbytes)
    out = []
    while sched.pending():
        out.append(sched.dequeue()[1])
    assert out == list(range(len(sizes)))

# ---------------------------------------------------------------------------
# Fault injection: seeded replay determinism
# ---------------------------------------------------------------------------

from repro.faults import FaultInjector, FaultPlan  # noqa: E402
from repro.platform import ElasticPlatform, FunctionSpec, Tenant  # noqa: E402
from repro.sim import RngRegistry  # noqa: E402


def _fault_scenario(seed, crash_at, down_us):
    """A small crash/restart run; returns every observable of the run."""
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1"))
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    spec = FunctionSpec("svc", "t1", work_us=5)
    plat.deploy_service(spec, "worker1")
    plat.scale_out(spec, "worker0")
    plat.start()

    rng = RngRegistry(seed).stream("workload")
    stats = {"ok": 0, "err": 0}

    def load():
        yield env.timeout(30_000)
        for _ in range(20):
            yield env.timeout(rng.uniform(200.0, 2_000.0))
            try:
                yield from client.invoke("svc", "ping", 64)
                stats["ok"] += 1
            except Exception:
                stats["err"] += 1

    env.process(load(), name="load")
    plan = FaultPlan().node_crash(crash_at, "worker1", down_us=down_us)
    injector = FaultInjector(env, plat, plan)
    injector.start()
    env.run(until=250_000)
    reconnects = sum(e.conn_mgr.reconnects_succeeded
                     for e in plat.engines.values())
    return (tuple(injector.timeline), stats["ok"], stats["err"], reconnects)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    crash_at=st.floats(min_value=40_000.0, max_value=100_000.0),
    down_us=st.floats(min_value=20_000.0, max_value=80_000.0),
)
@settings(max_examples=6, deadline=None)
def test_fault_replay_is_deterministic(seed, crash_at, down_us):
    """Same seed + same plan -> identical timeline and counters."""
    first = _fault_scenario(seed, crash_at, down_us)
    second = _fault_scenario(seed, crash_at, down_us)
    assert first == second


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    burn=st.integers(min_value=0, max_value=64),
)
@settings(max_examples=20, deadline=None)
def test_fault_stream_never_perturbs_workload_draws(seed, burn):
    """Draws on the dedicated faults stream leave other streams intact."""
    clean, faulty = RngRegistry(seed), RngRegistry(seed)
    for _ in range(burn):
        faulty.faults().random()
    assert ([clean.stream("workload").random() for _ in range(16)]
            == [faulty.stream("workload").random() for _ in range(16)])
