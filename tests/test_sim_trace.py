"""Tests for the execution tracer (repro.sim.trace)."""

import pytest

from repro.sim import Environment, Tracer


def test_tracer_records_resumptions():
    env = Environment()
    tracer = Tracer(env)

    def worker():
        yield env.timeout(1)
        yield env.timeout(2)

    env.process(worker(), name="worker")
    env.run()
    assert tracer.count("worker") == 3  # init + two timeouts
    assert [r.time for r in tracer.records] == [0.0, 1.0, 3.0]


def test_tracer_include_filter():
    env = Environment()
    tracer = Tracer(env, include="dne")

    def loop():
        yield env.timeout(1)

    env.process(loop(), name="dne-loop")
    env.process(loop(), name="client")
    env.run()
    assert tracer.count("dne-loop") > 0
    assert tracer.count("client") == 0


def test_tracer_preserves_return_values():
    env = Environment()
    Tracer(env)

    def child():
        yield env.timeout(1)
        return 42

    def parent(out):
        value = yield env.process(child(), name="child")
        out.append(value)

    out = []
    env.process(parent(out), name="parent")
    env.run()
    assert out == [42]


def test_tracer_preserves_exceptions():
    env = Environment()
    Tracer(env)

    def bad():
        yield env.timeout(1)
        raise ValueError("boom")

    env.process(bad(), name="bad")
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_tracer_preserves_interrupts():
    from repro.sim import Interrupt
    env = Environment()
    Tracer(env)
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append(interrupt.cause)

    def interrupter(proc):
        yield env.timeout(5)
        proc.interrupt("wake")

    proc = env.process(sleeper(), name="sleeper")
    env.process(interrupter(proc), name="interrupter")
    env.run()
    assert log == ["wake"]


def test_tracer_bounded_memory():
    env = Environment()
    tracer = Tracer(env, max_records=5)

    def chatty():
        for _ in range(20):
            yield env.timeout(1)

    env.process(chatty(), name="chatty")
    env.run()
    assert len(tracer.records) == 5
    assert tracer.dropped > 0


def test_tracer_between_window():
    env = Environment()
    tracer = Tracer(env)

    def worker():
        for _ in range(10):
            yield env.timeout(10)

    env.process(worker(), name="w")
    env.run()
    window = tracer.between(20, 50)
    assert all(20 <= r.time < 50 for r in window)
    assert len(window) == 3


def test_tracer_summary_and_detach():
    env = Environment()
    tracer = Tracer(env)

    def worker():
        yield env.timeout(1)

    env.process(worker(), name="w1")
    tracer.detach()
    env.process(worker(), name="w2")
    env.run()
    assert tracer.count("w1") > 0
    assert tracer.count("w2") == 0
    assert "resumptions" in tracer.summary()


def test_tracer_validation():
    with pytest.raises(ValueError):
        Tracer(Environment(), max_records=0)
