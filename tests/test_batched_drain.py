"""Batched CQE draining is observationally identical to per-CQE gets.

The dataplane's ``poll_batch``/``drain_ready`` exist to cut kernel
wakeups, not to change what a consumer sees.  These tests pin that
down two ways: a hypothesis property over scripted put bursts on a
bare :class:`Store`, and an end-to-end recorded fault-flush sequence
(successful sends, then a QP error flushing the rest) consumed once
CQE-by-CQE and once in batches.  ``cq.get()`` is deliberately used
here as the single-CQE reference consumer — the dataplane lint only
polices ``src/repro`` outside the rdma package.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CostModel
from repro.hw import build_cluster
from repro.memory import MemoryPool
from repro.rdma import ConnectionManager, Opcode, RdmaFabric, WorkRequest
from repro.sim import Environment, Store


# ---------------------------------------------------------------------------
# store-level property: scripted bursts, two consumer styles
# ---------------------------------------------------------------------------

_bursts = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
              st.integers(min_value=1, max_value=6)),
    min_size=1, max_size=20)


def _run_consumer(bursts, batched):
    """Producer replays ``bursts``; consumer records (now, item).

    Returns (records, heap events, consumer resumptions, final now).
    Heap-event counts must match between styles — the byte-identity
    gates depend on that — so the batched win shows up as fewer
    consumer resumptions (and get-event allocations), not fewer
    kernel events.
    """
    env = Environment()
    store = Store(env)
    records = []
    yields = [0]

    def producer():
        seq = 0
        for delay, count in bursts:
            yield env.timeout(delay)
            for _ in range(count):
                store.put_nowait(seq)
                seq += 1

    def single():
        while True:
            item = yield store.get()
            yields[0] += 1
            records.append((env.now, item))

    def batch():
        while True:
            items = yield store.poll_batch()
            yields[0] += 1
            for item in items:
                records.append((env.now, item))

    env.process(producer(), name="producer")
    env.process(batch() if batched else single(), name="consumer")
    env.run()
    return records, env.events_processed, yields[0], env.now


@given(_bursts)
@settings(max_examples=150, deadline=None)
def test_batched_consumer_sees_the_single_get_trace(bursts):
    single = _run_consumer(bursts, batched=False)
    batched = _run_consumer(bursts, batched=True)
    # identical items at identical times, identical kernel-event count
    # (the gate invariant), identical final clock...
    assert batched[0] == single[0]
    assert batched[1] == single[1]
    assert batched[3] == single[3]
    # ...with at most as many consumer resumptions
    assert batched[2] <= single[2]


def test_burst_drains_in_one_resumption_per_wakeup():
    bursts = [(1.0, 5)]
    single = _run_consumer(bursts, batched=False)
    batched = _run_consumer(bursts, batched=True)
    assert batched[0] == single[0]
    assert batched[1] == single[1]
    # five same-instant puts: single-get resumes per item (five get
    # events), the batch poll resumes per burst
    assert single[2] == 5
    assert batched[2] < single[2]


def test_drain_ready_is_fifo_and_respects_limit():
    env = Environment()
    store = Store(env)
    assert store.drain_ready() == []
    for i in range(6):
        store.put_nowait(i)
    assert store.drain_ready(limit=2) == [0, 1]
    assert store.drain_ready() == [2, 3, 4, 5]
    assert store.drain_ready() == []


def test_poll_batch_sync_fast_path_honours_limit():
    env = Environment()
    store = Store(env)
    for i in range(4):
        store.put_nowait(i)
    got = []

    def consumer():
        items = yield store.poll_batch(limit=3)
        got.append(items)
        items = yield store.poll_batch()
        got.append(items)

    env.process(consumer(), name="consumer")
    env.run()
    assert got == [[0, 1, 2], [3]]
    assert store.get_count == 4


# ---------------------------------------------------------------------------
# end to end: a recorded fault-flush CQE sequence
# ---------------------------------------------------------------------------

def _run_fault_flush(batched):
    """Two good SENDs, QP error, three flushed posts; drain r0's CQ.

    Explicit ``wr_id``s keep the two runs comparable (the default ids
    come from a process-global counter).
    """
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    r0 = fabric.install_rnic("worker0")
    r1 = fabric.install_rnic("worker1")
    p0 = MemoryPool(env, "t", 16, 4096, name="p0")
    p1 = MemoryPool(env, "t", 16, 4096, name="p1")
    r0.register_pool(p0)
    r1.register_pool(p1)
    cm = ConnectionManager(env, fabric, "worker0", cost)
    holder = {}

    def setup():
        holder["qp"] = (yield from cm.warm_up("worker1", "t", 1))[0]

    env.process(setup())
    env.run()
    qp = holder["qp"]

    records = []
    yields = [0]

    def single():
        cq = r0.cq
        while True:
            c = yield cq.get()
            yields[0] += 1
            records.append((env.now, c.wr_id, c.opcode, c.ok, c.flushed))

    def batch():
        cq = r0.cq
        while True:
            batch = yield cq.poll_batch()
            yields[0] += 1
            for c in batch:
                records.append((env.now, c.wr_id, c.opcode, c.ok, c.flushed))

    def driver():
        # posted receives so the two healthy SENDs complete (no RNR)
        r1.post_recv("t", p1.get("dne1"), "dne1")
        r1.post_recv("t", p1.get("dne1"), "dne1")
        r0.post_send(qp, WorkRequest(opcode=Opcode.SEND, length=64,
                                     wr_id=9001))
        r0.post_send(qp, WorkRequest(opcode=Opcode.SEND, length=256,
                                     wr_id=9002))
        yield env.timeout(5_000.0)
        cm.fail_connections(cause="injected")
        for i, wr_id in enumerate((9003, 9004, 9005)):
            r0.post_send(qp, WorkRequest(opcode=Opcode.SEND,
                                         length=64 + i, wr_id=wr_id))
        yield env.timeout(5_000.0)

    env.process(batch() if batched else single(), name="consumer")
    env.process(driver(), name="driver")
    env.run()
    state = (r0.flushed_cqes, qp.pending_wrs, r0.cq.put_count,
             r0.cq.get_count, len(r0.cq.items))
    return records, state, env.events_processed, yields[0], env.now


def test_fault_flush_sequence_drains_identically_in_batches():
    single = _run_fault_flush(batched=False)
    batched = _run_fault_flush(batched=True)

    records = single[0]
    # the recorded sequence is what the fault model promises: two good
    # completions, then the three flushed failures, FIFO by wr_id
    assert [r[1] for r in records] == [9001, 9002, 9003, 9004, 9005]
    assert [r[3] for r in records] == [True, True, False, False, False]
    assert [r[4] for r in records] == [False, False, True, True, True]

    # batched drain: same records at the same instants, same producer
    # state, same kernel-event count (the gate invariant), same final
    # clock — with fewer consumer resumptions (the flushed CQEs land
    # as one burst)
    assert batched[0] == single[0]
    assert batched[1] == single[1]
    assert batched[2] == single[2]
    assert batched[4] == single[4]
    assert batched[3] < single[3]
