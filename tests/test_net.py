"""Tests for software network stacks, HTTP costs, and SK_MSG IPC."""

import pytest

from repro.config import CostModel
from repro.hw import CorePool, build_cluster, rss_queue
from repro.memory import Buffer, BufferDescriptor
from repro.net import (
    FStack,
    HttpProcessor,
    HttpRequest,
    HttpResponse,
    KernelTcpStack,
    SockMap,
)
from repro.sim import Environment, Store


# ---------------------------------------------------------------------------
# stacks
# ---------------------------------------------------------------------------

def test_kernel_stack_charges_cpu():
    env = Environment()
    cost = CostModel()
    cpu = CorePool(env, 1)
    stack = KernelTcpStack(env, cpu, cost)

    def proc():
        yield from stack.rx(512)
        yield from stack.tx(512)

    env.process(proc())
    env.run()
    assert env.now >= cost.kernel_tcp_us * 2
    assert stack.stats.rx_messages == 1
    assert stack.stats.tx_messages == 1


def test_kernel_livelock_penalty_grows_with_backlog():
    env = Environment()
    stack = KernelTcpStack(env, CorePool(env, 1), CostModel())
    assert stack._livelock_penalty() == 1.0
    stack.in_flight = 50
    assert stack._livelock_penalty() > 2.0
    stack.in_flight = 10_000
    assert stack._livelock_penalty() == 30.0  # capped


def test_kernel_overload_collapses_goodput():
    """Many concurrent messages on one core: per-message cost inflates."""
    cost = CostModel()
    results = {}
    for concurrency in (1, 64):
        env = Environment()
        stack = KernelTcpStack(env, CorePool(env, 1), cost)
        done = []

        def msg():
            yield from stack.rx(256)
            done.append(env.now)

        for _ in range(concurrency):
            env.process(msg())
        env.run()
        results[concurrency] = env.now / concurrency
    assert results[64] > results[1] * 1.3  # livelock: superlinear slowdown


def test_fstack_cheaper_than_kernel():
    cost = CostModel()
    times = {}
    for name, cls in (("kernel", KernelTcpStack), ("fstack", FStack)):
        env = Environment()
        if cls is FStack:
            pool = CorePool(env, 2)
            core = pool.allocate_pinned("w")
            stack = FStack(env, core, cost)
        else:
            stack = KernelTcpStack(env, CorePool(env, 1), cost)

        def proc():
            yield from stack.rx(256)

        env.process(proc())
        env.run()
        times[name] = env.now
    assert times["fstack"] < times["kernel"] / 3


def test_handshake_costs():
    env = Environment()
    cost = CostModel()
    stack = KernelTcpStack(env, CorePool(env, 1), cost)

    def proc():
        yield from stack.handshake()

    env.process(proc())
    env.run()
    assert env.now >= cost.tcp_handshake_us
    assert stack.stats.handshakes == 1


# ---------------------------------------------------------------------------
# HTTP
# ---------------------------------------------------------------------------

def test_http_request_wire_bytes():
    req = HttpRequest("/home", body="x", body_bytes=256)
    assert req.wire_bytes == 256 + 180
    resp = HttpResponse(200, body_bytes=512)
    assert resp.wire_bytes == 512 + 180


def test_http_request_ids_unique():
    a = HttpRequest("/a")
    b = HttpRequest("/a")
    assert a.request_id != b.request_id


def test_http_processor_charges():
    env = Environment()
    cost = CostModel()
    http = HttpProcessor(CorePool(env, 1), cost)

    def proc():
        yield from http.parse(400)
        yield from http.serialize(400)

    env.process(proc())
    env.run()
    assert http.parsed == 1 and http.serialized == 1
    assert env.now > cost.http_parse_us


# ---------------------------------------------------------------------------
# SK_MSG sockmap
# ---------------------------------------------------------------------------

def _descriptor():
    buf = Buffer(64)
    buf.owner = "fn:a"
    return BufferDescriptor(buffer=buf, length=16)


def test_sockmap_register_and_redirect():
    env = Environment()
    sockmap = SockMap(env, CostModel())
    socket = sockmap.register("fn-b")
    sockmap.redirect("fn-b", _descriptor())
    assert socket.backlog == 1
    assert sockmap.messages == 1


def test_sockmap_lookup_missing():
    sockmap = SockMap(Environment(), CostModel())
    with pytest.raises(KeyError):
        sockmap.lookup("ghost")


def test_sockmap_send_charges_sender():
    env = Environment()
    cost = CostModel()
    sockmap = SockMap(env, cost)
    sockmap.register("fn-b")
    cpu = CorePool(env, 1)

    def proc():
        yield from sockmap.send(cpu, "fn-b", _descriptor())

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(cost.sk_msg_us)


def test_sockmap_shared_inbox():
    env = Environment()
    sockmap = SockMap(env, CostModel())
    inbox = Store(env)
    sockmap.register("fn-b", inbox)
    sockmap.redirect("fn-b", _descriptor())
    assert len(inbox) == 1


def test_sockmap_register_idempotent():
    env = Environment()
    sockmap = SockMap(env, CostModel())
    a = sockmap.register("fn")
    b = sockmap.register("fn")
    assert a is b


# ---------------------------------------------------------------------------
# RSS
# ---------------------------------------------------------------------------

def test_rss_stable():
    assert rss_queue("flow-1", 4) == rss_queue("flow-1", 4)


def test_rss_in_range_and_spread():
    picks = {rss_queue(f"flow-{i}", 8) for i in range(200)}
    assert picks.issubset(set(range(8)))
    assert len(picks) == 8  # all queues used across many flows


def test_rss_requires_queues():
    with pytest.raises(ValueError):
        rss_queue("x", 0)


# ---------------------------------------------------------------------------
# links
# ---------------------------------------------------------------------------

def test_link_serialization_and_latency():
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    link = cluster.fabric_link("worker0", "worker1")
    done = []

    def proc():
        yield from link.transmit(25_000)  # exactly 1 us serialization
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done[0] == pytest.approx(1.0 + cost.rdma_base_latency_us)
    assert link.frames == 1
    assert link.bytes_sent == 25_000


def test_link_contention_serializes_frames():
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    link = cluster.fabric_link("worker0", "worker1")
    done = []

    def proc(i):
        yield from link.transmit(250_000)  # 10 us each
        done.append(env.now)

    for i in range(3):
        env.process(proc(i))
    env.run()
    serial = [t - cost.rdma_base_latency_us for t in done]
    assert serial == pytest.approx([10.0, 20.0, 30.0])


def test_unknown_fabric_path_rejected():
    env = Environment()
    cluster = build_cluster(env, CostModel())
    with pytest.raises(KeyError):
        cluster.fabric_link("worker0", "client")
