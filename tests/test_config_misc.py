"""Tests for configuration, topology specs, and assorted small APIs."""

import pytest

from repro.config import (
    ClusterSpec,
    CostModel,
    NodeSpec,
    SEC,
    cost_model_overrides,
    describe,
)
from repro.hw import Cluster, build_cluster
from repro.sim import Environment


# ---------------------------------------------------------------------------
# CostModel
# ---------------------------------------------------------------------------

def test_cost_model_is_frozen():
    cost = CostModel()
    with pytest.raises(AttributeError):
        cost.rnic_op_us = 99.0


def test_cost_model_overrides():
    cost = cost_model_overrides(rnic_op_us=1.5)
    assert cost.rnic_op_us == 1.5
    assert cost.fstack_us == CostModel().fstack_us  # others untouched


def test_cost_model_describe_covers_all_fields():
    cost = CostModel()
    flat = describe(cost)
    assert flat["rnic_op_us"] == cost.rnic_op_us
    assert len(flat) == len(cost.__dataclass_fields__)


def test_cost_scaled_touches_processing_not_wire():
    base = CostModel()
    scaled = base.scaled(3.0)
    assert scaled.kernel_tcp_us == base.kernel_tcp_us * 3
    assert scaled.fstack_us == base.fstack_us * 3
    assert scaled.dne_tx_proc_us == base.dne_tx_proc_us * 3
    assert scaled.fabric_bytes_per_us == base.fabric_bytes_per_us
    assert scaled.rdma_base_latency_us == base.rdma_base_latency_us


def test_wire_and_endhost_helpers():
    cost = CostModel()
    assert cost.wire_time(25_000) == pytest.approx(1.0)
    assert cost.endhost_time(0) == 0.0
    assert cost.endhost_time(10_000) == pytest.approx(
        10_000 * cost.endhost_per_byte_us
    )


def test_copy_time_monotone_in_size_and_coldness():
    cost = CostModel()
    assert cost.copy_time(4096) > cost.copy_time(64)
    assert cost.copy_time(4096, cached=False) > cost.copy_time(4096, cached=True)


def test_soc_dma_time():
    cost = CostModel()
    assert cost.soc_dma_time(0) == cost.soc_dma_base_us
    assert cost.soc_dma_time(3500) == pytest.approx(cost.soc_dma_base_us + 1.0)


def test_unit_constants():
    assert SEC == 1_000_000.0


# ---------------------------------------------------------------------------
# Node / cluster specs and topology
# ---------------------------------------------------------------------------

def test_node_spec_testbed_defaults():
    spec = NodeSpec()
    assert spec.cpu_cores == 80        # two 40-core CPUs (§4)
    assert spec.cpu_ghz == 3.7
    assert spec.dpu_cores == 8         # Bluefield-2 A72 complex
    assert spec.dpu_ghz == 2.0
    assert spec.hugepage_bytes == 2 * 1024 * 1024


def test_cluster_spec_roles():
    spec = ClusterSpec()
    assert spec.worker_spec(0).has_dpu
    assert not spec.ingress_spec().has_dpu
    assert not spec.client_spec().has_dpu


def test_cluster_has_four_nodes():
    cluster = build_cluster(Environment(), CostModel())
    assert set(cluster.nodes) == {"worker0", "worker1", "ingress", "client"}
    assert len(cluster.workers) == 2


def test_workers_have_dpu_and_dma():
    cluster = build_cluster(Environment(), CostModel())
    for worker in cluster.workers:
        assert worker.dpu is not None
        assert worker.soc_dma is not None
    assert cluster.ingress_node.dpu is None


def test_fabric_links_cover_workers_and_ingress():
    cluster = build_cluster(Environment(), CostModel())
    cluster.fabric_link("worker0", "worker1")
    cluster.fabric_link("worker1", "worker0")
    cluster.fabric_link("worker0", "ingress")
    cluster.fabric_link("ingress", "worker1")
    with pytest.raises(KeyError):
        cluster.fabric_link("worker0", "worker0")


def test_custom_worker_count():
    cluster = build_cluster(Environment(), CostModel(), workers=3)
    assert len(cluster.workers) == 3
    cluster.fabric_link("worker2", "worker0")


def test_ether_links_exist():
    env = Environment()
    cluster = build_cluster(env, CostModel())
    done = []

    def proc():
        yield from cluster.ether_up.transmit(100)
        yield from cluster.ether_down.transmit(100)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done


def test_link_utilization_accounting():
    env = Environment()
    cluster = build_cluster(env, CostModel())
    link = cluster.fabric_link("worker0", "worker1")

    def proc():
        yield from link.transmit(250_000)  # 10 us serialization

    env.process(proc())
    env.run(until=20.0)
    assert link.utilization() == pytest.approx(0.5, abs=0.05)


def test_invalid_link_rate_rejected():
    from repro.hw import Link
    with pytest.raises(ValueError):
        Link(Environment(), 0, 1.0)
