"""Focused tests for the function runtime and chain specs."""

import pytest

from repro.dataplane import KIND_RESPONSE, VIA_SKMSG
from repro.dataplane import Message as Header
from repro.memory import Buffer, BufferDescriptor
from repro.platform import ChainSpec, FunctionSpec, Message, ServerlessPlatform, Tenant
from repro.sim import Environment


def make_pair(handler=None, **spec_kwargs):
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("t1"))
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", handler, **spec_kwargs), "worker0")
    plat.start()
    return env, plat, client


def test_message_src_property():
    msg = Message(payload="x", size=1, header=Header(src="alice"))
    assert msg.src == "alice"
    assert Message(payload="x", size=1, header=Header()).src == "?"


def test_chain_spec_exchange_count():
    chain = ChainSpec("c", "t", "entry", hops=[("a", "b"), ("b", "c")])
    assert chain.exchange_count == 4  # 2 hops x (request + response)
    assert ChainSpec("c", "t", "entry").exchange_count == 0


def test_default_echo_handler_runs_work():
    env, plat, client = make_pair(handler=None, work_us=33)
    out = []

    def body():
        yield env.timeout(5_000)
        reply = yield from client.invoke("server", [1, 2, 3], 128)
        out.append(reply.payload)

    env.process(body())
    env.run(until=200_000)
    assert out == [[1, 2, 3]]
    assert plat.functions["server"].app_time_us == pytest.approx(33.0)


def test_handler_sees_request_metadata():
    seen = {}

    def handler(ctx, msg):
        seen["src"] = msg.header.src
        seen["reply_to"] = msg.header.reply_to
        seen["kind"] = msg.header.kind
        seen["payload"] = msg.payload
        seen["size"] = msg.size
        yield from ctx.respond("ok", 8)

    env, plat, client = make_pair(handler=handler)

    def body():
        yield env.timeout(5_000)
        yield from client.invoke("server", {"k": 1}, 77)

    env.process(body())
    env.run(until=200_000)
    assert seen["payload"] == {"k": 1}
    assert seen["size"] == 77
    assert seen["src"] == "client"
    assert seen["reply_to"] == "client"
    assert seen["kind"] == "request"


def test_handler_exception_propagates():
    def handler(ctx, msg):
        yield from ctx.compute(1)
        raise RuntimeError("handler blew up")

    env, plat, client = make_pair(handler=handler)

    def body():
        yield env.timeout(5_000)
        yield from client.invoke("server", "x", 8)

    env.process(body())
    with pytest.raises(RuntimeError, match="handler blew up"):
        env.run(until=200_000)


def test_concurrency_limit_queues_requests():
    env, plat, client = make_pair(handler=None, work_us=200, concurrency=1)
    done = []

    def one(i):
        yield from client.invoke("server", i, 8)
        done.append((i, env.now))

    def body():
        yield env.timeout(5_000)
        procs = [env.process(one(i)) for i in range(3)]
        for proc in procs:
            yield proc

    env.process(body())
    env.run(until=400_000)
    # serialized on the single handler worker: ~200us apart
    times = [t for _, t in done]
    assert times[1] - times[0] >= 190
    assert times[2] - times[1] >= 190


def test_unsolicited_response_recycled():
    """A response whose caller vanished is recycled, not leaked."""
    env, plat, client = make_pair(handler=None)
    pool = plat.pool_for("t1", "worker0")

    def body():
        yield env.timeout(5_000)
        buf = pool.get("fn:server")
        buf.write("fn:server", "ghost", 5)
        header = Header(kind=KIND_RESPONSE, rid=999_999_999, dst="client",
                        tenant="t1", via=VIA_SKMSG, owner="fn:server")
        descriptor = BufferDescriptor(buffer=buf, length=5, message=header)
        buf.transfer("fn:server", "fn:client")
        header.transfer("fn:server", "fn:client")
        plat.runtimes["worker0"].sockmap.redirect("client", descriptor)

    env.process(body())
    env.run(until=100_000)
    # steady state: everything except the SRQ posting is back in the pool
    assert pool.free_count == pool.buffer_count - plat.recv_buffers


def test_latency_stats_per_invocation():
    env, plat, client = make_pair(handler=None, work_us=50)

    def body():
        yield env.timeout(5_000)
        for _ in range(4):
            yield from client.invoke("server", "x", 8)

    env.process(body())
    env.run(until=400_000)
    stats = plat.functions["server"].latency
    assert stats.count == 4
    assert stats.mean() >= 50.0
