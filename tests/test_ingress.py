"""Tests for the cluster ingress gateways (Palladium / K / F) + autoscaler."""

import pytest

from repro.config import CostModel, SEC
from repro.ingress import (
    Autoscaler,
    FIngress,
    GatewayWorker,
    KIngress,
    PalladiumIngress,
    TcpWorkerAdapter,
)
from repro.net import HttpRequest
from repro.platform import ServerlessPlatform, Tenant
from repro.sim import Environment
from repro.workloads import ClientFleet, deploy_http_echo, ECHO_TENANT


def palladium_setup():
    env = Environment()
    plat = ServerlessPlatform(env)
    resolver = deploy_http_echo(plat)
    ingress = PalladiumIngress(env, plat.cluster, plat.fabric, plat.cost,
                               resolver, min_workers=1)
    ingress.add_tenant(ECHO_TENANT)
    plat.coordinator.subscribe(ingress.routes)
    plat.register_external(ingress.AGENT, "ingress")
    ingress.start()
    plat.start()
    return env, plat, ingress


def proxy_setup(kind):
    env = Environment()
    plat = ServerlessPlatform(env)
    resolver = deploy_http_echo(plat)
    adapter = TcpWorkerAdapter(env, plat.runtimes["worker0"], plat.cost,
                               stack_kind=TcpWorkerAdapter.FSTACK)
    factory = KIngress if kind == "k" else FIngress
    ingress = factory(env, plat.cluster, plat.cost, resolver,
                      {"worker0": adapter}, lambda fn: "worker0", cores=1)
    ingress.start()
    plat.start()
    return env, plat, ingress


def run_fleet(env, plat, ingress, clients=2, until=400_000):
    fleet = ClientFleet(env, plat.cluster, ingress, path="/echo",
                        body_bytes=128, payload="hello")

    def kickoff():
        yield env.timeout(50_000)
        fleet.spawn(clients)

    env.process(kickoff())
    env.run(until=until)
    return fleet


# ---------------------------------------------------------------------------
# Palladium ingress
# ---------------------------------------------------------------------------

def test_palladium_ingress_end_to_end():
    env, plat, ingress = palladium_setup()
    fleet = run_fleet(env, plat, ingress)
    assert fleet.total_completed() > 100
    assert fleet.total_errors() == 0
    # responses echo the request payload
    assert ingress.stats.completed == fleet.total_completed()


def test_palladium_ingress_payload_integrity():
    env, plat, ingress = palladium_setup()
    conn = ingress.connect()
    got = []

    def client():
        yield env.timeout(50_000)
        request = HttpRequest("/echo", body="precious", body_bytes=64)
        yield from plat.cluster.ether_up.transmit(request.wire_bytes)
        ingress.submit(conn, request)
        response = yield conn.inbox.get()
        got.append(response)

    env.process(client())
    env.run(until=300_000)
    assert got and got[0].body == "precious"
    assert got[0].status == 200


def test_palladium_ingress_recycles_buffers():
    env, plat, ingress = palladium_setup()
    fleet = run_fleet(env, plat, ingress)
    pool = ingress.pools[ECHO_TENANT]
    # free = total - posted receive buffers (replenished steady state)
    assert pool.free_count >= pool.buffer_count - ingress.recv_buffers - 8


def test_palladium_ingress_duplicate_tenant_rejected():
    env, plat, ingress = palladium_setup()
    with pytest.raises(ValueError):
        ingress.add_tenant(ECHO_TENANT)


def test_palladium_rss_spreads_connections():
    env = Environment()
    plat = ServerlessPlatform(env)
    resolver = deploy_http_echo(plat)
    ingress = PalladiumIngress(env, plat.cluster, plat.fabric, plat.cost,
                               resolver, min_workers=4)
    ingress.add_tenant(ECHO_TENANT)
    ingress.start()
    workers = {id(ingress.workers[0])}
    from repro.ingress.gateway import rss_pick
    picks = {rss_pick(ingress.workers, i).name for i in range(64)}
    assert len(picks) == 4


# ---------------------------------------------------------------------------
# Proxy ingresses
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind", ["k", "f"])
def test_proxy_ingress_end_to_end(kind):
    env, plat, ingress = proxy_setup(kind)
    fleet = run_fleet(env, plat, ingress)
    assert fleet.total_completed() > 50
    assert fleet.total_errors() == 0


def test_proxy_f_faster_than_k():
    results = {}
    for kind in ("k", "f"):
        env, plat, ingress = proxy_setup(kind)
        fleet = run_fleet(env, plat, ingress, clients=8)
        results[kind] = fleet.total_completed()
    assert results["f"] > results["k"] * 1.5


def test_palladium_beats_proxies():
    env, plat, ingress = palladium_setup()
    palladium = run_fleet(env, plat, ingress, clients=8).total_completed()
    env2, plat2, f_ingress = proxy_setup("f")
    fstack = run_fleet(env2, plat2, f_ingress, clients=8).total_completed()
    assert palladium > fstack


def test_adapter_stack_kind_validation():
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant(ECHO_TENANT))
    with pytest.raises(ValueError):
        TcpWorkerAdapter(env, plat.runtimes["worker0"], plat.cost,
                         stack_kind="quantum")


def test_kernel_adapter_uses_shared_cores():
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant(ECHO_TENANT))
    before = plat.cluster.node("worker0").cpu.free_cores
    TcpWorkerAdapter(env, plat.runtimes["worker0"], plat.cost,
                     stack_kind=TcpWorkerAdapter.KERNEL)
    assert plat.cluster.node("worker0").cpu.free_cores == before


def test_fstack_adapter_pins_a_core():
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant(ECHO_TENANT))
    before = plat.cluster.node("worker0").cpu.free_cores
    TcpWorkerAdapter(env, plat.runtimes["worker0"], plat.cost,
                     stack_kind=TcpWorkerAdapter.FSTACK)
    assert plat.cluster.node("worker0").cpu.free_cores == before - 1


# ---------------------------------------------------------------------------
# Autoscaler (hysteresis policy, §3.6)
# ---------------------------------------------------------------------------

class _FakeCore:
    def __init__(self):
        class _Tracker:
            useful = 0.0
        self.tracker = _Tracker()


def make_autoscaler(env, cost):
    workers = []
    counter = {"n": 0}

    def spawn():
        worker = GatewayWorker(env, counter["n"], _FakeCore())
        counter["n"] += 1
        workers.append(worker)

    def reap():
        workers.pop()

    spawn()
    scaler = Autoscaler(env, cost, spawn, reap, lambda: workers,
                        min_workers=1, max_workers=4)
    return scaler, workers


def test_autoscaler_scales_up_past_threshold():
    env = Environment()
    cost = CostModel()
    scaler, workers = make_autoscaler(env, cost)

    def load():
        while True:
            yield env.timeout(100_000)
            for worker in workers:
                worker.core.tracker.useful += 80_000  # 80% busy

    env.process(load())
    env.process(scaler.run())
    env.run(until=3.5 * SEC)
    assert len(workers) > 1
    assert scaler.scale_events >= 1


def test_autoscaler_scales_down_when_idle():
    env = Environment()
    cost = CostModel()
    scaler, workers = make_autoscaler(env, cost)
    workers_ref = workers
    # start with 3 workers, all idle
    for _ in range(2):
        workers_ref.append(GatewayWorker(env, 99, _FakeCore()))
    env.process(scaler.run())
    env.run(until=3.5 * SEC)
    assert len(workers_ref) == 1  # reaped down to min


def test_autoscaler_respects_max():
    env = Environment()
    cost = CostModel()
    scaler, workers = make_autoscaler(env, cost)

    def load():
        while True:
            yield env.timeout(100_000)
            for worker in workers:
                worker.core.tracker.useful += 95_000

    env.process(load())
    env.process(scaler.run())
    env.run(until=10 * SEC)
    assert len(workers) == 4  # capped at max_workers


def test_scale_event_pauses_workers():
    env = Environment()
    cost = CostModel()
    worker = GatewayWorker(env, 0, _FakeCore())
    worker.pause(1000.0)
    resumed = []

    def proc():
        yield from worker.maybe_pause()
        resumed.append(env.now)

    env.process(proc())
    env.run()
    assert resumed == [1000.0]
