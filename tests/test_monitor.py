"""The SLO monitor: recording rules, burn-rate alerting, arming, and
the monitor-flavored no-perturb guarantee.

Unit tests drive the monitor off a fake clock (it only ever reads
``env.now``), so rule arithmetic is tested without a simulation; the
determinism tests then run real experiment points monitor-on vs
monitor-off and require byte-identical results outside the
``telemetry`` key.
"""

import pytest

from repro.sim import Environment
from repro.telemetry import (
    BurnWindow,
    MetricsRegistry,
    Monitor,
    QuantileRule,
    RateRule,
    RatioRule,
    Selector,
    Slo,
    SpanTracer,
    Telemetry,
)


class FakeClock:
    """The monitor's whole environment contract is ``.now``."""

    def __init__(self):
        self.now = 0.0


def make_monitor(**kwargs):
    env = FakeClock()
    reg = MetricsRegistry()
    mon = Monitor(env, reg, **kwargs)
    reg.observer = mon._pulse
    return env, reg, mon


def tick(env, reg, to_us):
    """Advance the clock and fire one observation (the piggyback)."""
    env.now = to_us
    reg.counter("heartbeat_total").inc(0)


class TestSelector:
    def test_key_is_promql_ish(self):
        assert Selector("m").key == "m"
        assert (Selector("m", {"tenant": "a", "node": "w0"}).key
                == 'm{node="w0",tenant="a"}')

    def test_where_filters_children(self):
        reg = MetricsRegistry()
        c = reg.counter("m_total", labels=("tenant", "node"))
        c.labels("a", "w0").inc(3)
        c.labels("a", "w1").inc(5)
        c.labels("b", "w0").inc(7)
        assert Selector("m_total", {"tenant": "a"}).scalar(reg) == 8.0
        assert Selector("m_total").scalar(reg) == 15.0

    def test_unknown_label_name_matches_nothing(self):
        reg = MetricsRegistry()
        reg.counter("m_total", labels=("tenant",)).labels("a").inc()
        assert Selector("m_total", {"zone": "x"}).scalar(reg) == 0.0

    def test_missing_family_reads_zero(self):
        assert Selector("nope_total").scalar(MetricsRegistry()) == 0.0


class TestRecordingRules:
    def test_rate_rule_is_per_second_delta(self):
        env, reg, mon = make_monitor(step_us=1_000.0)
        mon.add_rule(RateRule("rps", "req_total", window_us=10_000.0))
        for t in range(0, 21):
            env.now = t * 1_000.0
            reg.counter("req_total").inc(5)  # 5 events per ms
        # 50 events over the 10 ms window -> 5000/s
        assert mon.series["rps"][-1][1] == pytest.approx(5_000.0)

    def test_ratio_rule_default_on_no_traffic(self):
        env, reg, mon = make_monitor(step_us=1_000.0)
        mon.add_rule(RatioRule("err", "errors_total", "req_total",
                               window_us=5_000.0, default=0.25))
        tick(env, reg, 1_000.0)
        tick(env, reg, 2_000.0)
        assert mon.series["err"][-1][1] == 0.25

    def test_ratio_rule_accepts_bare_string_metric(self):
        # Regression: a bare string must become ONE selector, not one
        # selector per character.
        rule = RatioRule("r", "shed_total", "req_total", 5_000.0)
        assert [s.key for s in rule.num] == ["shed_total"]
        assert [s.key for s in rule.den] == ["req_total"]

    def test_quantile_rule_tracks_the_window_not_the_lifetime(self):
        env, reg, mon = make_monitor(step_us=1_000.0)
        mon.add_rule(QuantileRule("p99", "lat_us", 0.99,
                                  window_us=5_000.0))
        h = reg.histogram("lat_us", low=1.0, high=100_000.0)
        for t in range(1, 8):
            env.now = t * 1_000.0
            for _ in range(10):
                h.observe(10.0)
            reg.counter("heartbeat_total").inc(0)
        early = mon.series["p99"][-1][1]
        # the distribution shifts: recent observations are 100x slower
        for t in range(8, 15):
            env.now = t * 1_000.0
            for _ in range(10):
                h.observe(1_000.0)
            reg.counter("heartbeat_total").inc(0)
        late = mon.series["p99"][-1][1]
        assert early <= 20.0
        assert late >= 500.0

    def test_duplicate_rule_name_rejected(self):
        _, _, mon = make_monitor()
        mon.add_rule(RateRule("a", "m_total", 1_000.0))
        with pytest.raises(ValueError):
            mon.add_rule(RateRule("a", "other_total", 1_000.0))

    def test_quantile_rule_rejects_bad_q(self):
        with pytest.raises(ValueError):
            QuantileRule("bad", "lat_us", 1.5, 1_000.0)


def availability_slo(objective=0.9, **kwargs):
    kwargs.setdefault("min_events", 5)
    kwargs.setdefault("windows", (
        BurnWindow("fast", 5_000.0, 2_000.0, threshold=2.0,
                   severity="page"),))
    return Slo("slo-avail", objective=objective,
               good=[Selector("good_total")],
               total=[Selector("req_total")], **kwargs)


def drive(env, reg, mon, t_us, good, bad):
    env.now = t_us
    reg.counter("req_total").inc(good + bad)
    reg.counter("good_total").inc(good)


class TestSloAlerting:
    def test_fires_on_burn_and_resolves_on_recovery(self):
        env, reg, mon = make_monitor(step_us=1_000.0)
        mon.add_slo(availability_slo())
        for t in range(1, 6):
            drive(env, reg, mon, t * 1_000.0, good=10, bad=0)
        assert mon.timeline == []
        for t in range(6, 12):  # total outage: burn = 1/0.1 = 10 > 2
            drive(env, reg, mon, t * 1_000.0, good=0, bad=10)
        assert mon.first_firing_us() is not None
        firing = [tr for tr in mon.timeline if tr["state"] == "firing"]
        assert firing[0]["severity"] == "page"
        assert firing[0]["burn"] > 2.0
        for t in range(12, 25):  # full recovery
            drive(env, reg, mon, t * 1_000.0, good=10, bad=0)
        states = [tr["state"] for tr in mon.timeline]
        assert states == ["firing", "resolved"]
        spans = mon.alert_spans()
        assert len(spans) == 1
        assert spans[0]["resolved_ts"] > spans[0]["fired_ts"]

    def test_min_events_gates_the_long_window(self):
        env, reg, mon = make_monitor(step_us=1_000.0)
        mon.add_slo(availability_slo(min_events=50))
        for t in range(1, 12):
            drive(env, reg, mon, t * 1_000.0, good=0, bad=2)
        # 100% failure but only ~10 events per long window: muted
        assert mon.timeline == []

    def test_both_windows_must_burn(self):
        env, reg, mon = make_monitor(step_us=1_000.0)
        mon.add_slo(availability_slo())
        # long window accumulates failures, but the last 2 ms (the
        # short window) are clean — no alert, the problem already ended
        for t in range(1, 6):
            drive(env, reg, mon, t * 1_000.0, good=0, bad=10)
        for t in range(6, 9):
            drive(env, reg, mon, t * 1_000.0, good=10, bad=0)
        firing_at = mon.first_firing_us()
        assert firing_at is None or firing_at <= 5_000.0

    def test_arm_at_us_suppresses_early_alerts(self):
        env, reg, mon = make_monitor(step_us=1_000.0, arm_at_us=20_000.0)
        mon.add_slo(availability_slo())
        for t in range(1, 15):  # constant outage, but unarmed
            drive(env, reg, mon, t * 1_000.0, good=0, bad=10)
        assert mon.timeline == []
        for t in range(15, 30):  # still burning once armed
            drive(env, reg, mon, t * 1_000.0, good=0, bad=10)
        assert mon.first_firing_us() >= 20_000.0

    def test_latency_sli_counts_threshold_bucket_as_good(self):
        env, reg, mon = make_monitor(step_us=1_000.0)
        mon.add_slo(Slo("slo-lat", objective=0.9,
                        hist_metric="lat_us", threshold_us=1_000.0,
                        min_events=5,
                        windows=(BurnWindow("fast", 5_000.0, 2_000.0,
                                            threshold=2.0),)))
        h = reg.histogram("lat_us", low=1.0, high=1_000_000.0)
        for t in range(1, 10):
            env.now = t * 1_000.0
            for _ in range(10):
                h.observe(100.0)  # well under the threshold
            reg.counter("heartbeat_total").inc(0)
        assert mon.timeline == []
        for t in range(10, 20):
            env.now = t * 1_000.0
            for _ in range(10):
                h.observe(50_000.0)  # way over
            reg.counter("heartbeat_total").inc(0)
        assert mon.first_firing_us() is not None

    def test_duplicate_slo_name_rejected(self):
        _, _, mon = make_monitor()
        mon.add_slo(availability_slo())
        with pytest.raises(ValueError):
            mon.add_slo(availability_slo())

    def test_slo_requires_exactly_one_sli_shape(self):
        with pytest.raises(ValueError):
            Slo("x", objective=0.9)  # neither shape
        with pytest.raises(ValueError):
            Slo("x", objective=0.9, hist_metric="lat_us",
                threshold_us=1.0, good=[Selector("g")],
                total=[Selector("t")])  # both shapes
        with pytest.raises(ValueError):
            Slo("x", objective=1.5, hist_metric="lat_us",
                threshold_us=1.0)  # bad objective

    def test_alert_transitions_mark_the_tracer(self):
        env = FakeClock()
        reg = MetricsRegistry()
        tracer = SpanTracer(env)
        mon = Monitor(env, reg, tracer=tracer, step_us=1_000.0)
        reg.observer = mon._pulse
        mon.add_slo(availability_slo())
        for t in range(1, 12):
            drive(env, reg, mon, t * 1_000.0, good=0, bad=10)
        assert mon.first_firing_us() is not None
        marks = [m for m in tracer.marks if m["category"] == "alert"]
        assert marks and marks[0]["name"] == "alert:slo-avail"
        assert marks[0]["state"] == "firing"


class TestMonitorMechanics:
    def test_quiet_stretch_catchup_is_clamped(self):
        env, reg, mon = make_monitor(step_us=1_000.0, catchup_steps=8)
        tick(env, reg, 1_000.0)
        tick(env, reg, 500_000.0)  # a 499-step silence
        # only the clamp's worth of boundaries were evaluated
        assert mon.evaluations <= 2 + 8

    def test_series_capped_at_max_points(self):
        env, reg, mon = make_monitor(step_us=1_000.0, max_points=5)
        mon.add_rule(RateRule("rps", "req_total", 2_000.0))
        for t in range(1, 20):
            tick(env, reg, t * 1_000.0)
        assert len(mon.series["rps"]) == 5
        assert mon.dropped_points > 0

    def test_install_publishes_on_telemetry(self):
        env = Environment()
        tel = Telemetry.install(env)
        mon = tel.attach_monitor(step_us=2_000.0)
        assert tel.monitor is mon
        assert tel.metrics.observer == mon._pulse
        assert tel.attach_monitor() is mon  # idempotent

    def test_snapshot_is_json_safe(self):
        import json
        env, reg, mon = make_monitor(step_us=1_000.0)
        mon.add_rule(RateRule("rps", "req_total", 2_000.0))
        mon.add_slo(availability_slo())
        for t in range(1, 10):
            drive(env, reg, mon, t * 1_000.0, good=0, bad=10)
        snap = json.loads(json.dumps(mon.snapshot()))
        assert snap["rules"]["rps"]
        assert snap["alerts"] == mon.timeline
        assert snap["slos"][0]["name"] == "slo-avail"


class TestMonitorDeterminism:
    """The PR's acceptance gate: the monitor observes, never perturbs."""

    def test_overload_point_identical_with_monitor(self):
        from repro.experiments import run_overload_point

        kwargs = dict(multiplier=0.8, duration_us=40_000.0)
        plain = run_overload_point("palladium-dne", **kwargs)
        monitored = run_overload_point("palladium-dne",
                                       with_monitor=True, **kwargs)
        telemetry = monitored.pop("telemetry")
        assert telemetry.monitor is not None
        assert telemetry.monitor.evaluations > 0
        assert plain == monitored

    def test_fault_point_identical_with_monitor(self):
        from repro.experiments import run_fault_point

        kwargs = dict(clients=4, down_us=40_000.0, post_us=30_000.0)
        plain = run_fault_point("palladium-dne", **kwargs)
        monitored = run_fault_point("palladium-dne",
                                    with_monitor=True, **kwargs)
        monitored.pop("telemetry")
        assert plain == monitored

    def test_alert_marks_export_into_the_chrome_trace(self):
        from repro.telemetry import validate_chrome_trace

        env = FakeClock()  # Environment.now is read-only
        tel = Telemetry(env)
        mon = tel.attach_monitor(step_us=1_000.0)
        mon.add_slo(availability_slo())
        root = tel.tracer.start_span("request:/x", node="w0", actor="gw")
        for t in range(1, 12):
            drive(env, tel.metrics, mon, t * 1_000.0, good=0, bad=10)
        tel.tracer.end_span(root)
        trace = tel.tracer.to_chrome()
        assert validate_chrome_trace(trace) == []
        alert_events = [e for e in trace["traceEvents"]
                        if e["ph"] == "i" and e["name"].startswith("alert:")]
        assert alert_events
