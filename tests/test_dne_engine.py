"""End-to-end tests for the network engine (repro.dne.engine)."""

import pytest

from repro.config import CostModel
from repro.dne import ComchE, DpuNetworkEngine, DwrrScheduler, NetworkEngine
from repro.hw import build_cluster
from repro.memory import (
    CrossProcessorExporter,
    MappingError,
    MemoryPool,
    OwnershipError,
    create_from_export,
)
from repro.rdma import RdmaFabric
from repro.sim import Environment


def build_pair(cost=None, mode=NetworkEngine.MODE_OFF_PATH):
    """Two DNEs with one tenant and attached echo endpoints."""
    env = Environment()
    cost = cost or CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    engines, pools, channels = {}, {}, {}
    for name in ("worker0", "worker1"):
        node = cluster.node(name)
        channel = ComchE(env, cost, name=f"comch:{name}")
        engine = DpuNetworkEngine(env, node, fabric, cost, channel,
                                  scheduler=DwrrScheduler(), mode=mode,
                                  name=f"dne:{name}")
        pool = MemoryPool(env, "t", 128, 8192, name=f"pool:{name}")
        remote = create_from_export(
            CrossProcessorExporter(pool).export_pci().export_rdma().descriptor()
        )
        engine.setup_tenant("t", pool, remote, recv_buffers=32)
        engines[name], pools[name], channels[name] = engine, pool, channel
    for engine in engines.values():
        engine.add_route("client", "worker0")
        engine.add_route("server", "worker1")
    return env, cost, cluster, engines, pools, channels


def run_echo(env, cost, cluster, engines, pools, channels, n_messages=5,
             size=64):
    """Drive n closed-loop echoes through the engine pair; return RTTs."""
    ep_client = channels["worker0"].attach("client")
    ep_server = channels["worker1"].attach("server")
    engines["worker0"].start(warm_peers=[("worker1", "t")])
    engines["worker1"].start(warm_peers=[("worker0", "t")])
    host0 = cluster.node("worker0").cpu
    host1 = cluster.node("worker1").cpu
    rtts = []

    def server():
        while True:
            desc = yield ep_server.recv()
            buf = desc.buffer
            buf.check_owner("fn:server")
            buf.transfer("fn:server", engines["worker1"].agent)
            back = desc.derive(dst="client", tenant="t")
            yield from channels["worker1"].function_send(host1, "server", back)

    def client():
        yield env.timeout(25_000)  # RC warm-up
        for i in range(n_messages):
            t0 = env.now
            buf = pools["worker0"].get("fn:client")
            buf.write("fn:client", f"m{i}", size)
            buf.transfer("fn:client", engines["worker0"].agent)
            desc = buf.descriptor(dst="server", src="client", tenant="t")
            yield from channels["worker0"].function_send(host0, "client", desc)
            resp = yield ep_client.recv()
            assert resp.buffer.read("fn:client") == f"m{i}"
            rtts.append(env.now - t0)
            pools["worker0"].put(resp.buffer, "fn:client")

    env.process(server(), name="server")
    env.process(client(), name="client")
    env.run(until=200_000)
    return rtts


def test_engine_end_to_end_echo():
    env, cost, cluster, engines, pools, channels = build_pair()
    rtts = run_echo(env, cost, cluster, engines, pools, channels)
    assert len(rtts) == 5
    assert all(20 < rtt < 100 for rtt in rtts)
    assert engines["worker0"].stats.tx_messages == 5
    assert engines["worker0"].stats.rx_messages == 5
    assert engines["worker1"].stats.rx_messages == 5


def test_engine_recycles_sender_buffers():
    env, cost, cluster, engines, pools, channels = build_pair()
    run_echo(env, cost, cluster, engines, pools, channels, n_messages=8)
    # all client-side buffers returned: free = total - SRQ-posted
    posted = 32
    assert pools["worker0"].free_count == 128 - posted
    assert engines["worker0"].stats.recycled == 8


def test_engine_replenishes_receive_buffers():
    env, cost, cluster, engines, pools, channels = build_pair()
    run_echo(env, cost, cluster, engines, pools, channels, n_messages=8)
    srq = engines["worker1"].rnic.srq("t")
    assert srq.depth == 32  # consumed buffers were re-posted


def test_on_path_mode_is_slower_and_uses_soc_dma():
    results = {}
    for mode in (NetworkEngine.MODE_OFF_PATH, NetworkEngine.MODE_ON_PATH):
        env, cost, cluster, engines, pools, channels = build_pair(mode=mode)
        rtts = run_echo(env, cost, cluster, engines, pools, channels,
                        n_messages=5, size=1024)
        dma_transfers = sum(
            cluster.node(n).soc_dma.transfers for n in ("worker0", "worker1")
        )
        results[mode] = (sum(rtts) / len(rtts), dma_transfers)
    off_rtt, off_dma = results[NetworkEngine.MODE_OFF_PATH]
    on_rtt, on_dma = results[NetworkEngine.MODE_ON_PATH]
    assert off_dma == 0
    assert on_dma > 0
    assert on_rtt > off_rtt


def test_engine_mode_validation():
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    channel = ComchE(env, cost)
    with pytest.raises(ValueError):
        DpuNetworkEngine(env, cluster.node("worker0"), fabric, cost, channel,
                         mode="sideways")


def test_engine_requires_dpu():
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    channel = ComchE(env, cost)
    with pytest.raises(ValueError):
        DpuNetworkEngine(env, cluster.ingress_node, fabric, cost, channel)


def test_duplicate_tenant_rejected():
    env, cost, cluster, engines, pools, channels = build_pair()
    with pytest.raises(ValueError):
        engines["worker0"].setup_tenant("t", pools["worker0"])


def test_double_start_rejected():
    env, cost, cluster, engines, pools, channels = build_pair()
    engines["worker0"].start()
    with pytest.raises(RuntimeError):
        engines["worker0"].start()


def test_dpu_engine_requires_rdma_grant():
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    channel = ComchE(env, cost)
    engine = DpuNetworkEngine(env, cluster.node("worker0"), fabric, cost, channel)
    pool = MemoryPool(env, "t", 8, 1024)
    # PCI-only export: registration with the RNIC must fail
    remote = create_from_export(
        CrossProcessorExporter(pool).export_pci().descriptor()
    )
    with pytest.raises(MappingError):
        engine.setup_tenant("t", pool, remote)


def test_function_cannot_touch_buffer_after_send():
    """The token-passing invariant across the engine boundary."""
    env, cost, cluster, engines, pools, channels = build_pair()
    channels["worker0"].attach("client")
    channels["worker1"].attach("server")
    engines["worker0"].start(warm_peers=[("worker1", "t")])
    engines["worker1"].start()
    host0 = cluster.node("worker0").cpu
    violations = []

    def client():
        yield env.timeout(25_000)
        buf = pools["worker0"].get("fn:client")
        buf.write("fn:client", "data", 4)
        buf.transfer("fn:client", engines["worker0"].agent)
        desc = buf.descriptor(dst="server", src="client", tenant="t")
        yield from channels["worker0"].function_send(host0, "client", desc)
        try:
            buf.write("fn:client", "tamper", 6)
        except OwnershipError:
            violations.append("caught")

    env.process(client())
    env.run(until=100_000)
    assert violations == ["caught"]


def test_engine_drops_message_for_unknown_function():
    env, cost, cluster, engines, pools, channels = build_pair()
    channels["worker0"].attach("client")
    # note: no "server" endpoint attached on worker1
    engines["worker0"].start(warm_peers=[("worker1", "t")])
    engines["worker1"].start()
    host0 = cluster.node("worker0").cpu

    def client():
        yield env.timeout(25_000)
        buf = pools["worker0"].get("fn:client")
        buf.write("fn:client", "data", 4)
        buf.transfer("fn:client", engines["worker0"].agent)
        desc = buf.descriptor(dst="server", src="client", tenant="t")
        yield from channels["worker0"].function_send(host0, "client", desc)

    env.process(client())
    env.run(until=100_000)
    # message was dropped (never delivered) and its buffer recycled
    assert channels["worker1"].to_fn_count == 0
    assert pools["worker1"].free_count == 128 - 32


def test_engine_stats_tenant_meter():
    env, cost, cluster, engines, pools, channels = build_pair()
    run_echo(env, cost, cluster, engines, pools, channels, n_messages=4)
    meter = engines["worker0"].stats.tenant_meter("t")
    assert meter.count == 4
