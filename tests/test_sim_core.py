"""Tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_clock_custom_start():
    assert Environment(5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(10)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [10.0]


def test_timeout_value_delivered():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1, value="hello")
        got.append(value)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(30, "c"))
    env.process(proc(10, "a"))
    env.process(proc(20, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in "abcd":
        env.process(proc(tag))
    env.run()
    assert order == list("abcd")


def test_manual_event_succeed():
    env = Environment()
    event = env.event()
    got = []

    def waiter():
        value = yield event
        got.append((env.now, value))

    def trigger():
        yield env.timeout(7)
        event.succeed(42)

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert got == [(7.0, 42)]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_raises_in_waiter():
    env = Environment()
    event = env.event()
    caught = []

    def waiter():
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield env.timeout(1)
        event.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_before_trigger_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(3)
        return "result"

    def parent(got):
        value = yield env.process(child())
        got.append(value)

    got = []
    env.process(parent(got))
    env.run()
    assert got == ["result"]


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise ValueError("child failed")

    def parent(got):
        try:
            yield env.process(child())
        except ValueError as exc:
            got.append(str(exc))

    got = []
    env.process(parent(got))
    env.run()
    assert got == ["child failed"]


def test_unhandled_process_failure_aborts_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(bad())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_yield_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_run_until_time():
    env = Environment()
    log = []

    def proc():
        while True:
            yield env.timeout(10)
            log.append(env.now)

    env.process(proc())
    env.run(until=35)
    assert log == [10.0, 20.0, 30.0]
    assert env.now == 35.0


def test_run_until_past_rejected():
    env = Environment()
    env.process((env.timeout(1) for _ in range(1)))
    env.run(until=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_until_event():
    env = Environment()

    def child():
        yield env.timeout(12)
        return "done"

    assert env.run(until=env.process(child())) == "done"
    assert env.now == 12.0


def test_run_until_event_never_fires():
    env = Environment()
    with pytest.raises(SimulationError):
        env.run(until=env.event())


def test_interrupt_waiting_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(proc):
        yield env.timeout(5)
        proc.interrupt("wake up")

    proc = env.process(sleeper())
    env.process(interrupter(proc))
    env.run()
    assert log == [(5.0, "wake up")]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(10)
        log.append(env.now)

    def interrupter(proc):
        yield env.timeout(5)
        proc.interrupt()

    proc = env.process(sleeper())
    env.process(interrupter(proc))
    env.run()
    assert log == [15.0]


def test_any_of_fires_on_first():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(10, value="fast")
        t2 = env.timeout(20, value="slow")
        result = yield AnyOf(env, [t1, t2])
        log.append((env.now, t1 in result, t2 in result))

    env.process(proc())
    env.run()
    assert log == [(10.0, True, False)]


def test_all_of_waits_for_all():
    env = Environment()
    log = []

    def proc():
        result = yield AllOf(env, [env.timeout(10), env.timeout(25)])
        log.append((env.now, len(result)))

    env.process(proc())
    env.run()
    assert log == [(25.0, 2)]


def test_empty_condition_fires_immediately():
    env = Environment()
    log = []

    def proc():
        yield AllOf(env, [])
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [0.0]


def test_defer_runs_callback():
    env = Environment()
    log = []
    env.defer(5, lambda: log.append(env.now))
    env.defer(2, lambda: log.append(env.now))
    env.run()
    assert log == [2.0, 5.0]


def test_completed_event_resumes_synchronously():
    env = Environment()
    log = []

    def proc():
        value = yield env.completed_event("instant")
        log.append((env.now, value))
        yield env.timeout(1)
        log.append((env.now, "after"))

    env.process(proc())
    env.run()
    assert log == [(0.0, "instant"), (1.0, "after")]


def test_peek_and_step():
    env = Environment()
    env.process((env.timeout(5) for _ in range(1)))
    # process initialization event is immediate
    assert env.peek() == 0.0
    env.step()
    assert env.peek() == 5.0


def test_step_without_events_is_error():
    with pytest.raises(SimulationError):
        Environment().step()


def test_determinism_same_seed_same_trace():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(i):
            for step in range(3):
                yield env.timeout(1 + (i * 7 + step) % 5)
                trace.append((env.now, i, step))

        for i in range(5):
            env.process(worker(i))
        env.run()
        return trace

    assert build_and_run() == build_and_run()
