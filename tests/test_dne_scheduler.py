"""Tests for the tenant schedulers (repro.dne.scheduler)."""

import pytest

from repro.dne import DwrrScheduler, FcfsScheduler


# ---------------------------------------------------------------------------
# FCFS
# ---------------------------------------------------------------------------

def test_fcfs_arrival_order():
    sched = FcfsScheduler()
    sched.enqueue("a", "m1")
    sched.enqueue("b", "m2")
    sched.enqueue("a", "m3")
    assert sched.dequeue() == ("a", "m1")
    assert sched.dequeue() == ("b", "m2")
    assert sched.dequeue() == ("a", "m3")
    assert sched.dequeue() is None


def test_fcfs_pending_and_backlog():
    sched = FcfsScheduler()
    assert sched.pending() == 0
    sched.enqueue("a", 1)
    sched.enqueue("a", 2)
    sched.enqueue("b", 3)
    assert sched.pending() == 3
    assert sched.backlog("a") == 2
    assert sched.backlog("b") == 1
    sched.dequeue()
    assert sched.backlog("a") == 1


def test_fcfs_burst_starves_steady_tenant():
    """The Fig. 15 (1) effect: a queue flooded by one tenant serves it."""
    sched = FcfsScheduler()
    for _ in range(100):
        sched.enqueue("bursty", "x")
    sched.enqueue("steady", "y")
    first_100 = [sched.dequeue()[0] for _ in range(100)]
    assert set(first_100) == {"bursty"}


# ---------------------------------------------------------------------------
# DWRR
# ---------------------------------------------------------------------------

def test_dwrr_quantum_validation():
    with pytest.raises(ValueError):
        DwrrScheduler(quantum_bytes=0)


def test_dwrr_weight_validation():
    sched = DwrrScheduler()
    with pytest.raises(ValueError):
        sched.set_weight("a", 0)
    with pytest.raises(ValueError):
        sched.set_weight("a", -1)


def test_dwrr_default_weight_is_one():
    assert DwrrScheduler().weight("nobody") == 1.0


def test_dwrr_empty_dequeue():
    assert DwrrScheduler().dequeue() is None


def test_dwrr_single_tenant_fifo():
    sched = DwrrScheduler()
    for i in range(5):
        sched.enqueue("a", i, nbytes=100)
    assert [sched.dequeue()[1] for i in range(5)] == [0, 1, 2, 3, 4]


def test_dwrr_weighted_shares_equal_sizes():
    """Backlogged tenants split dequeues by weight (Fig. 15 (2))."""
    sched = DwrrScheduler(quantum_bytes=256)
    sched.set_weight("t1", 6.0)
    sched.set_weight("t2", 1.0)
    sched.set_weight("t3", 2.0)
    for tenant in ("t1", "t2", "t3"):
        for i in range(900):
            sched.enqueue(tenant, i, nbytes=256)
    counts = {"t1": 0, "t2": 0, "t3": 0}
    for _ in range(900):
        tenant, _item = sched.dequeue()
        counts[tenant] += 1
    total = sum(counts.values())
    assert counts["t1"] / total == pytest.approx(6 / 9, abs=0.03)
    assert counts["t2"] / total == pytest.approx(1 / 9, abs=0.03)
    assert counts["t3"] / total == pytest.approx(2 / 9, abs=0.03)


def test_dwrr_byte_fairness_with_mixed_sizes():
    """Fairness is in bytes, not messages: small-message tenants get
    proportionally more dequeues."""
    sched = DwrrScheduler(quantum_bytes=1024)
    sched.set_weight("small", 1.0)
    sched.set_weight("large", 1.0)
    for i in range(4000):
        sched.enqueue("small", i, nbytes=256)
    for i in range(1000):
        sched.enqueue("large", i, nbytes=1024)
    bytes_served = {"small": 0, "large": 0}
    for _ in range(2000):
        tenant, _ = sched.dequeue()
        bytes_served[tenant] += 256 if tenant == "small" else 1024
    ratio = bytes_served["small"] / bytes_served["large"]
    assert ratio == pytest.approx(1.0, abs=0.25)


def test_dwrr_idle_tenant_gets_no_stale_credit():
    """A tenant that goes idle loses its deficit (standard DWRR)."""
    sched = DwrrScheduler(quantum_bytes=100)
    sched.set_weight("a", 1.0)
    sched.enqueue("a", "x", nbytes=100)
    assert sched.dequeue() == ("a", "x")
    # tenant left the active list with zero deficit
    assert sched._deficit["a"] == 0.0


def test_dwrr_large_message_eventually_served():
    """A head-of-line message bigger than one quantum still transmits."""
    sched = DwrrScheduler(quantum_bytes=64)
    sched.set_weight("a", 1.0)
    sched.enqueue("a", "jumbo", nbytes=4096)
    assert sched.dequeue() == ("a", "jumbo")


def test_dwrr_work_conserving():
    """dequeue never returns None while work is pending."""
    sched = DwrrScheduler(quantum_bytes=10)
    for i in range(50):
        sched.enqueue(f"t{i % 5}", i, nbytes=1000)
    served = 0
    while sched.pending():
        assert sched.dequeue() is not None
        served += 1
    assert served == 50


def test_dwrr_new_tenant_joins_round():
    sched = DwrrScheduler(quantum_bytes=100)
    sched.set_weight("a", 1.0)
    sched.set_weight("b", 1.0)
    for i in range(10):
        sched.enqueue("a", f"a{i}", nbytes=100)
    assert sched.dequeue()[0] == "a"
    for i in range(10):
        sched.enqueue("b", f"b{i}", nbytes=100)
    tenants = [sched.dequeue()[0] for _ in range(18)]
    assert "b" in tenants  # late joiner is served within the round
    assert abs(tenants.count("a") - tenants.count("b")) <= 2


def test_dwrr_backlog_per_tenant():
    sched = DwrrScheduler()
    sched.enqueue("a", 1, nbytes=10)
    sched.enqueue("a", 2, nbytes=10)
    assert sched.backlog("a") == 2
    assert sched.backlog("b") == 0
