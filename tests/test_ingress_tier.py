"""The hierarchical ingress tier: ring, flow tables, failover, wiring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ingress import (
    ConsistentHashRing,
    FlowTable,
    GatewayTier,
    TieredIngress,
)
from repro.sim import Environment
from repro.telemetry import Telemetry


# ---------------------------------------------------------------------------
# consistent-hash ring
# ---------------------------------------------------------------------------

def test_ring_lookup_is_deterministic():
    a = ConsistentHashRing()
    b = ConsistentHashRing()
    for ring in (a, b):
        for i in range(8):
            ring.add(f"gw{i}")
    assert [a.lookup(k) for k in range(500)] == \
           [b.lookup(k) for k in range(500)]


def test_ring_spreads_load_roughly_evenly():
    ring = ConsistentHashRing(vnodes=64)
    for i in range(8):
        ring.add(f"gw{i}")
    counts = {}
    for key in range(8_000):
        counts[ring.lookup(key)] = counts.get(ring.lookup(key), 0) + 1
    assert len(counts) == 8
    # all gateways within a loose factor of the fair share
    fair = 8_000 / 8
    assert all(0.4 * fair < c < 2.0 * fair for c in counts.values())


def test_ring_removal_only_remaps_the_lost_gateways_flows():
    ring = ConsistentHashRing()
    for i in range(6):
        ring.add(f"gw{i}")
    before = {key: ring.lookup(key) for key in range(2_000)}
    ring.remove("gw3")
    for key, owner in before.items():
        if owner == "gw3":
            assert ring.lookup(key) != "gw3"
        else:
            assert ring.lookup(key) == owner


def test_ring_successor_skips_the_excluded_gateway():
    ring = ConsistentHashRing()
    for i in range(4):
        ring.add(f"gw{i}")
    for key in range(200):
        home = ring.lookup(key)
        heir = ring.successor(key, exclude=home)
        assert heir is not None and heir != home
    only = ConsistentHashRing()
    only.add("gw0")
    assert only.successor(1, exclude="gw0") is None


def test_ring_bounded_load_spills_past_hot_gateways():
    ring = ConsistentHashRing()
    for i in range(4):
        ring.add(f"gw{i}")
    key = next(k for k in range(100) if ring.lookup(k) == "gw0")
    # gw0 far above the bound -> the flow spills to the next gateway
    load = {"gw0": 100.0, "gw1": 1.0, "gw2": 1.0, "gw3": 1.0}
    spilled = ring.lookup_bounded(key, load)
    assert spilled != "gw0"
    # uniform overload: every gateway above the bound -> home wins
    load = {n: 100.0 for n in ring.members}
    assert ring.lookup_bounded(key, load) == "gw0"


@settings(max_examples=50, deadline=None)
@given(
    gateways=st.integers(min_value=2, max_value=12),
    victim=st.integers(min_value=0, max_value=11),
    keys=st.lists(st.integers(min_value=0, max_value=10**9),
                  min_size=1, max_size=200),
)
def test_property_respray_moves_only_failed_gateways_flows(
        gateways, victim, keys):
    """Hypothesis: losing one gateway remaps exactly its own flows."""
    victim %= gateways
    name = f"gw{victim}"
    ring = ConsistentHashRing(vnodes=16)
    for i in range(gateways):
        ring.add(f"gw{i}")
    before = {key: ring.lookup(key) for key in keys}
    ring.remove(name)
    for key, owner in before.items():
        after = ring.lookup(key)
        if owner == name:
            assert after != name
        else:
            assert after == owner


# ---------------------------------------------------------------------------
# flow table
# ---------------------------------------------------------------------------

def test_flow_table_hit_after_install_punt_before():
    table = FlowTable(capacity=4)
    assert not table.lookup("f1")          # cold punt
    assert table.install("f1", "t1")
    assert table.lookup("f1")              # hot hit
    assert table.hits == 1 and table.punts == 1


def test_flow_table_lru_eviction_at_capacity():
    table = FlowTable(capacity=2)
    table.install("a", "t1")
    table.install("b", "t1")
    table.install("c", "t1")               # evicts "a" (LRU, no hits)
    assert "a" not in table and "b" in table and "c" in table
    assert table.evictions == 1
    assert table.occupied == 2


def test_flow_table_clock_second_chance_protects_hot_entries():
    table = FlowTable(capacity=2)
    table.install("hot", "t1")
    table.install("cold", "t1")
    table.lookup("hot")                    # reference the hot entry
    table.lookup("cold")
    table.lookup("hot")                    # hot is MRU *and* referenced
    table.install("new", "t1")
    # the referenced hot entry got its second chance; a decayed one went
    assert "hot" in table and "new" in table and "cold" not in table


def test_flow_table_tenant_quota_rejects_not_evicts():
    table = FlowTable(capacity=10, tenant_quota=2)
    assert table.install("a", "t1")
    assert table.install("b", "t1")
    assert not table.install("c", "t1")    # t1 at quota -> stays cold
    assert table.install("d", "t2")        # other tenants unaffected
    assert table.quota_rejections == 1
    assert table.tenant_occupancy("t1") == 2


def test_flow_table_counts_flows_not_entries():
    table = FlowTable(capacity=5_000)
    assert table.install("bucket", "t1", size=4_000)
    assert table.occupied == 4_000
    # a second large bucket cannot coexist: the first is evicted to
    # make room (capacity is flow slots, not entry count)
    assert table.install("bucket2", "t1", size=2_000)
    assert "bucket" not in table
    assert table.occupied == 2_000
    # an entry larger than the whole table is refused outright
    assert not table.install("oversized", "t1", size=9_000)


def test_flow_table_snapshot_is_lru_first():
    table = FlowTable(capacity=4)
    for fid in ("a", "b", "c"):
        table.install(fid, "t1")
    table.lookup("a")                      # refresh "a" -> MRU
    assert [fid for fid, _, _ in table.snapshot()] == ["b", "c", "a"]


# ---------------------------------------------------------------------------
# gateway tier failover
# ---------------------------------------------------------------------------

def _warm_tier(n=4, flows=200, **kwargs):
    tier = GatewayTier([f"gw{i}" for i in range(n)], **kwargs)
    for key in range(flows):
        shard = tier.assign(key)
        tier.classify(shard, key, "t1", now=0.0)   # punt + install
        tier.classify(shard, key, "t1", now=0.0)   # hit
    return tier


def test_tier_failover_ships_state_to_ring_successors():
    tier = _warm_tier()
    dead = "gw1"
    owned = [k for k in range(200) if tier.assign(k).name == dead]
    assert owned
    moved = tier.fail_gateway(dead, now=100.0)
    assert sum(moved.values()) == len(tier.shards[dead].table.snapshot()) \
        or sum(moved.values()) > 0
    assert not tier.shards[dead].healthy
    # the dead shard's flows now assign to live successors
    for key in owned:
        assert tier.assign(key).name != dead


def test_tier_synced_flows_punt_cold_during_sync_window():
    tier = _warm_tier(sync_us=2_000.0)
    dead = "gw1"
    key = next(k for k in range(200) if tier.assign(k).name == dead)
    tier.fail_gateway(dead, now=100.0)
    heir = tier.assign(key)
    # inside the sync window the inherited entry is not yet installed
    assert not tier.classify(heir, key, "t1", now=500.0)
    # after the window the pending entries absorb and the flow is hot
    tier.classify(heir, key, "t1", now=2_200.0)
    assert tier.classify(heir, key, "t1", now=2_300.0)


def test_tier_recover_rejoins_with_empty_table():
    tier = _warm_tier()
    tier.fail_gateway("gw2", now=10.0)
    tier.recover_gateway("gw2")
    assert tier.shards["gw2"].healthy
    assert len(tier.shards["gw2"].table) == 0
    assert "gw2" in tier.ring


def test_tier_publish_exports_the_documented_names():
    env = Environment()
    tel = Telemetry.install(env)
    tier = _warm_tier()
    tier.fail_gateway("gw0", now=5.0)
    tier.publish(tel.metrics)
    text = tel.metrics.prometheus_text()
    for name in ("ingress_tier_spray_total", "flow_table_hits_total",
                 "flow_table_punts_total", "flow_table_evictions_total",
                 "gateway_failovers_total"):
        assert name in text
    assert tel.metrics.counter(
        "gateway_failovers_total",
        "Gateway failures absorbed by ring re-spray.").value() == 1.0


# ---------------------------------------------------------------------------
# TieredIngress wiring (DES balancer surface)
# ---------------------------------------------------------------------------

class _FakeIngress:
    def __init__(self, env):
        self.env = env
        self.healthy = True
        self.siblings = []
        self.submitted = []

    def start(self):
        pass

    def connect(self):
        from repro.ingress.gateway import ClientConnection
        return ClientConnection(self.env)

    def submit(self, conn, request):
        self.submitted.append(request)

    def load(self):
        return float(len(self.submitted))


def test_tiered_ingress_sprays_and_serves():
    env = Environment()
    lb = TieredIngress([_FakeIngress(env) for _ in range(4)])
    lb.start()
    conns = [lb.connect() for _ in range(32)]
    for conn in conns:
        lb.submit(conn, "req")
    assert sum(len(i.submitted) for i in lb.instances) == 32
    assert lb.dropped == 0
    # second submit on a connection is a hot hit
    lb.submit(conns[0], "req")
    assert sum(s.table.hits for s in lb.tier.shards.values()) >= 1


def test_tiered_ingress_failover_moves_only_dead_gateways_conns():
    env = Environment()
    instances = [_FakeIngress(env) for _ in range(4)]
    lb = TieredIngress(instances, health_check_period_us=1_000.0)
    lb.start()
    conns = [lb.connect() for _ in range(64)]
    before = dict(lb._owner)
    dead_name = "gw1"
    dead = lb._by_name[dead_name]
    dead.healthy = False
    env.run(until=2_500)
    for conn_id, (owner, _conn) in lb._owner.items():
        prior, _ = before[conn_id]
        if prior == dead_name:
            assert owner != dead_name
        else:
            assert owner == prior
    # submits keep landing on live instances, nothing dropped
    for conn in conns:
        lb.submit(conn, "req")
    assert lb.dropped == 0
    assert not dead.submitted


def test_tiered_ingress_owner_map_bounded_under_churn():
    env = Environment()
    lb = TieredIngress([_FakeIngress(env) for _ in range(2)])
    lb.start()
    for _ in range(5_000):
        conn = lb.connect()
        lb.close(conn)
    assert len(lb._owner) < 1_000
    assert all(s.table.occupied <= s.table.capacity
               for s in lb.tier.shards.values())


def test_tiered_ingress_needs_at_least_one_instance():
    with pytest.raises(ValueError):
        TieredIngress([])


def test_tiered_ingress_counts_spray_and_flow_metrics():
    env = Environment()
    tel = Telemetry.install(env)
    lb = TieredIngress([_FakeIngress(env) for _ in range(2)])
    lb.start()
    conn = lb.connect()
    lb.submit(conn, "req")      # punt + install
    lb.submit(conn, "req")      # hit
    text = tel.metrics.prometheus_text()
    assert "ingress_tier_spray_total" in text
    assert "flow_table_hits_total" in text
    assert "flow_table_punts_total" in text
