"""Tests for distributed locks and rendezvous (repro.rdma.locks)."""

import pytest

from repro.config import CostModel
from repro.hw import build_cluster
from repro.rdma import ConnectionManager, DistributedLock, RdmaFabric, Rendezvous
from repro.sim import Environment


def setup():
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    fabric.install_rnic("worker0")
    fabric.install_rnic("worker1")
    cm = ConnectionManager(env, fabric, "worker0", cost)
    return env, cost, fabric, cm


def with_qp(env, cm, body):
    """Run body(qp) after a warmed connection is available."""
    def runner():
        yield from cm.warm_up("worker1", "t", 1)
        qp = yield from cm.get_connection("worker1", "t")
        yield from body(qp)

    env.process(runner())
    env.run()


def test_lock_acquire_release_roundtrip():
    env, cost, fabric, cm = setup()
    lock = DistributedLock(env, fabric, "worker1", cost)
    log = []

    def body(qp):
        yield from lock.acquire(qp, 1)
        log.append(lock.word.value)
        yield from lock.release(qp, 1)
        log.append(lock.word.value)

    with_qp(env, cm, body)
    assert log == [1, 0]
    assert lock.stats.acquires == 1


def test_lock_mutual_exclusion():
    env, cost, fabric, cm = setup()
    lock = DistributedLock(env, fabric, "worker1", cost)
    critical = []

    def body(qp):
        def contender(holder):
            yield from lock.acquire(qp, holder)
            critical.append(("enter", holder, env.now))
            yield env.timeout(50)
            critical.append(("exit", holder, env.now))
            yield from lock.release(qp, holder)

        procs = [env.process(contender(h)) for h in (1, 2, 3)]
        for proc in procs:
            yield proc

    with_qp(env, cm, body)
    # critical sections never overlap
    inside = 0
    for kind, _holder, _t in critical:
        inside += 1 if kind == "enter" else -1
        assert 0 <= inside <= 1
    assert lock.stats.acquires == 3
    assert lock.stats.contended_retries > 0


def test_release_by_non_holder_rejected():
    env, cost, fabric, cm = setup()
    lock = DistributedLock(env, fabric, "worker1", cost)

    def body(qp):
        yield from lock.acquire(qp, 1)
        yield from lock.release(qp, 99)

    with pytest.raises(RuntimeError):
        with_qp(env, cm, body)


def test_lock_costs_fabric_round_trips():
    env, cost, fabric, cm = setup()
    lock = DistributedLock(env, fabric, "worker1", cost)
    timing = []

    def body(qp):
        t0 = env.now
        yield from lock.acquire(qp, 1)
        timing.append(env.now - t0)
        yield from lock.release(qp, 1)

    with_qp(env, cm, body)
    # at least one CAS round trip: 2x (rnic + base latency)
    assert timing[0] >= 2 * cost.rdma_base_latency_us


def test_rendezvous_sender_waits_for_announcement():
    env, cost, fabric, cm = setup()
    rendezvous = Rendezvous(env, fabric, cost)
    got = []

    def sender():
        buf = yield from rendezvous.await_ready("worker0", "flow-1")
        got.append((env.now, buf))

    def receiver():
        yield env.timeout(100)
        yield from rendezvous.announce("worker0", "worker1", "flow-1", "BUF")

    env.process(sender())
    env.process(receiver())
    env.run()
    assert got[0][1] == "BUF"
    assert got[0][0] >= 100 + cost.rdma_base_latency_us


def test_rendezvous_flows_are_independent():
    env, cost, fabric, cm = setup()
    rendezvous = Rendezvous(env, fabric, cost)
    got = []

    def sender(flow):
        buf = yield from rendezvous.await_ready("worker0", flow)
        got.append((flow, buf))

    def receiver():
        yield env.timeout(1)
        yield from rendezvous.announce("worker0", "worker1", "b", "B")
        yield from rendezvous.announce("worker0", "worker1", "a", "A")

    env.process(sender("a"))
    env.process(sender("b"))
    env.process(receiver())
    env.run()
    assert sorted(got) == [("a", "A"), ("b", "B")]
