"""Telemetry subsystem: spans, metrics, profiler, and the no-perturb
guarantee.

Covers the observability acceptance criteria:

* a multi-hop boutique request produces a well-formed span tree that
  exports as valid Chrome trace-event JSON;
* histogram bucket boundaries follow Prometheus ``le`` (inclusive
  upper-bound) semantics;
* the exporters are deterministic (golden files);
* enabling telemetry changes **nothing** about the simulation — the
  experiment output is identical with and without it.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import run_boutique_point
from repro.sim import Environment
from repro.telemetry import (
    CYCLE_CATEGORIES,
    CycleLedger,
    Histogram,
    MetricsRegistry,
    Telemetry,
    validate_chrome_trace,
)

GOLDEN = Path(__file__).parent / "golden"


# -- an instrumented multi-hop run, shared across the span tests ------------
@pytest.fixture(scope="module")
def boutique_telemetry():
    metrics = run_boutique_point("palladium-dne", "Home Query", clients=4,
                                 duration_us=40_000.0, with_telemetry=True)
    return metrics["telemetry"]


class TestSpanTree:
    def test_integrity_on_multi_hop_run(self, boutique_telemetry):
        tracer = boutique_telemetry.tracer
        assert tracer.dropped == 0
        assert len(tracer.spans) > 100
        assert tracer.check_integrity() == []

    def test_request_trace_spans_the_stack(self, boutique_telemetry):
        tracer = boutique_telemetry.tracer
        roots = [s for s in tracer.roots() if s.name.startswith("request:")]
        assert roots, "ingress should open request root spans"
        # Find a request trace that crossed nodes (Home Query fans out
        # from worker0's frontend to the worker1 leaves).
        names_by_trace = {}
        for root in roots:
            names = {s.name.split(":")[0] for s in tracer.trace(root.trace_id)}
            names_by_trace[root.trace_id] = names
        best = max(names_by_trace.values(), key=len)
        assert "engine.tx" in best
        assert "engine.rx" in best
        assert "rdma.send" in best or "rdma.write" in best
        assert "fn.exec" in best
        assert "fn.invoke" in best
        assert "iolib.send" in best

    def test_parent_chain_reaches_the_ingress_root(self, boutique_telemetry):
        tracer = boutique_telemetry.tracer
        execs = tracer.find("fn.exec")
        assert execs
        deepest = 0
        for span in execs:
            by_id = {s.span_id: s for s in tracer.trace(span.trace_id)}
            hops = 0
            node = span
            while node.parent_id is not None:
                node = by_id[node.parent_id]
                hops += 1
            if node.name.startswith("request:"):
                deepest = max(deepest, hops)
        # ingress -> engine.tx -> rdma -> engine.rx -> fn.exec is 4 hops
        assert deepest >= 4

    def test_chrome_export_is_schema_valid(self, boutique_telemetry):
        trace = boutique_telemetry.tracer.to_chrome()
        assert validate_chrome_trace(trace) == []
        # round-trips through JSON
        reloaded = json.loads(boutique_telemetry.tracer.to_chrome_json())
        assert validate_chrome_trace(reloaded) == []
        phases = {e["ph"] for e in reloaded["traceEvents"]}
        assert "X" in phases and "M" in phases

    def test_cycle_ledger_attributes_dne_work(self, boutique_telemetry):
        ledger = boutique_telemetry.cycles
        fractions = ledger.fractions()
        assert set(fractions) == set(CYCLE_CATEGORIES)
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        # the DNE is zero-copy; its overhead is descriptor-dominated
        assert ledger.us("copy") == 0.0
        assert fractions["descriptor"] > fractions["protocol"]


@pytest.fixture
def pinned_ids(monkeypatch):
    """Reset the remaining process-global id counters before a run.

    Connection ids (and the ingress request ids) are per-environment,
    so RSS worker selection no longer depends on prior runs in the
    process; http/function request ids are still global, so pin them
    to isolate the variable under test: with ids equal, only telemetry
    could make two runs differ.
    """
    import itertools

    from repro.net import http
    from repro.platform import function as function_mod

    def reset():
        monkeypatch.setattr(http, "_request_ids", itertools.count(1))
        monkeypatch.setattr(function_mod, "_rids", itertools.count(1))

    return reset


class TestDeterminism:
    def test_telemetry_changes_no_experiment_output(self, pinned_ids):
        kwargs = dict(chain="Home Query", clients=4, duration_us=40_000.0)
        pinned_ids()
        plain = run_boutique_point("palladium-dne", **kwargs)
        pinned_ids()
        instrumented = run_boutique_point("palladium-dne",
                                          with_telemetry=True, **kwargs)
        instrumented.pop("telemetry")
        assert plain == instrumented

    def test_exporters_are_deterministic(self, pinned_ids):
        kwargs = dict(chain="Home Query", clients=2, duration_us=25_000.0)
        pinned_ids()
        a = run_boutique_point("palladium-dne", with_telemetry=True, **kwargs)
        pinned_ids()
        b = run_boutique_point("palladium-dne", with_telemetry=True, **kwargs)

        def digest(text):
            # compare digests: a failure diff of the multi-MB exports
            # would take pytest minutes to render
            import hashlib
            return hashlib.sha256(text.encode()).hexdigest()

        assert digest(a["telemetry"].metrics.prometheus_text()) == \
            digest(b["telemetry"].metrics.prometheus_text())
        assert digest(a["telemetry"].tracer.to_chrome_json()) == \
            digest(b["telemetry"].tracer.to_chrome_json())


class TestHistogram:
    def test_bucket_bounds_are_log_linear(self):
        h = Histogram(low=1.0, high=16.0, sub_buckets=2)
        assert h.bounds == (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)

    def test_exact_bound_lands_in_its_le_bucket(self):
        # Prometheus le semantics: bucket counts value <= bound.
        h = Histogram(low=1.0, high=16.0, sub_buckets=2)
        for value, idx in [(0.5, 0), (1.0, 0), (1.2, 1), (1.5, 1),
                           (2.0, 2), (3.0, 3), (16.0, 8)]:
            assert h.bucket_index(value) == idx, value
        # past the top bound: the +Inf bucket
        assert h.bucket_index(16.1) == len(h.bounds)
        h.observe(16.1)
        assert h.counts[-1] == 1

    def test_observe_tracks_count_sum_min_max(self):
        h = Histogram(low=1.0, high=16.0, sub_buckets=2)
        for v in (0.5, 2.0, 100.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 102.5
        assert h.min == 0.5 and h.max == 100.0
        snap = h.snapshot()
        assert snap["overflow"] == 1
        assert [b for b, _ in snap["buckets"]] == [1.0, 2.0]

    def test_quantile_is_bounded_by_observations(self):
        h = Histogram(low=1.0, high=1024.0, sub_buckets=4)
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        assert h.quantile(1.0) == 100.0
        # log-linear relative error stays bounded (25% per octave here)
        assert h.quantile(0.5) == pytest.approx(50.0, rel=0.25)

    def test_registry_rejects_kind_mismatch(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError):
            reg.gauge("x_total")


class TestQuantileEdges:
    def test_empty_histogram_reports_zero(self):
        h = Histogram(low=1.0, high=16.0, sub_buckets=2)
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_q0_is_min_and_q1_is_max(self):
        h = Histogram(low=1.0, high=16.0, sub_buckets=2)
        for v in (0.3, 2.0, 7.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.3
        assert h.quantile(1.0) == 7.0

    def test_single_sample_answers_every_quantile(self):
        h = Histogram(low=1.0, high=16.0, sub_buckets=2)
        h.observe(3.7)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(3.7, rel=0.25)

    def test_overflow_bucket_reports_observed_max(self):
        # All mass past the top bound: the +Inf bucket must answer with
        # the observed max, not a bucket bound.
        h = Histogram(low=1.0, high=16.0, sub_buckets=2)
        for v in (100.0, 250.0, 999.0):
            h.observe(v)
        assert h.quantile(0.5) == 999.0
        assert h.quantile(1.0) == 999.0

    def test_answers_clamp_into_observed_range(self):
        # A sparse layout can never report outside [min, max].
        h = Histogram(low=1.0, high=1024.0, sub_buckets=1)
        for v in (5.0, 5.5, 6.0):
            h.observe(v)
        for q in (0.0, 0.5, 1.0):
            assert 5.0 <= h.quantile(q) <= 6.0

    def test_out_of_range_quantile_raises(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.quantile(-0.01)
        with pytest.raises(ValueError):
            h.quantile(1.01)


class TestPrometheusEscaping:
    def test_label_values_escape_specials(self):
        reg = MetricsRegistry()
        c = reg.counter("odd_total", "Odd labels.", labels=("path",))
        c.labels('say "hi"\\now\nplease').inc()
        text = reg.prometheus_text()
        assert r'path="say \"hi\"\\now\nplease"' in text
        assert "\n\n" not in text  # no raw newline leaked into a line

    def test_help_escapes_backslash_and_newline_keeps_quotes(self):
        reg = MetricsRegistry()
        reg.counter("h_total", 'back\\slash and\nnewline "quoted"')
        text = reg.prometheus_text()
        assert r'# HELP h_total back\\slash and\nnewline "quoted"' in text

    def test_escaping_round_trips_each_line_parseable(self):
        reg = MetricsRegistry()
        reg.counter("t_total", "Tricky.", labels=("k",)).labels('a\\b"c').inc(2)
        for line in reg.prometheus_text().splitlines():
            assert line == line.strip()
            if not line.startswith("#"):
                # value separates from the series by a single space
                series, value = line.rsplit(" ", 1)
                assert float(value) == 2.0
                assert series.endswith("}")


class TestExemplars:
    def test_reservoir_keeps_value_and_trace_id(self):
        h = Histogram(low=1.0, high=16.0, sub_buckets=2)
        h.observe(2.0, trace_id=7)
        h.observe(100.0, trace_id=9)
        rows = h.exemplars()
        assert (2.0, 2.0, 7) in rows
        assert (float("inf"), 100.0, 9) in rows

    def test_rotation_is_deterministic(self):
        from repro.telemetry.metrics import EXEMPLAR_RESERVOIR

        def fill():
            h = Histogram(low=1.0, high=16.0, sub_buckets=2)
            for i in range(10):
                h.observe(2.0, trace_id=100 + i)
            return h.exemplars()

        rows = fill()
        assert rows == fill()  # identical runs, identical exemplars
        assert len(rows) == EXEMPLAR_RESERVOIR

    def test_no_trace_id_no_exemplar(self):
        h = Histogram()
        h.observe(5.0)
        assert h.exemplars() == []
        assert "exemplars" not in h.snapshot()

    def test_snapshot_serializes_inf_bound(self):
        h = Histogram(low=1.0, high=16.0, sub_buckets=2)
        h.observe(99.0, trace_id=3)
        snap = h.snapshot()
        assert snap["exemplars"] == [["+Inf", 99.0, 3]]
        json.dumps(snap)  # JSON-safe


class TestCardinalityGuard:
    def test_overflow_tuples_share_a_detached_child(self):
        reg = MetricsRegistry(max_series_per_family=2)
        c = reg.counter("req_total", labels=("tenant",))
        c.labels("a").inc()
        c.labels("b").inc()
        c.labels("c").inc()   # over the cap
        c.labels("d").inc(2)  # shares the same overflow sink
        exported = {key for key, _ in reg.get("req_total").children()}
        assert exported == {("a",), ("b",)}
        assert 'tenant="c"' not in reg.prometheus_text()

    def test_drops_counted_in_self_metric(self):
        reg = MetricsRegistry(max_series_per_family=1)
        c = reg.counter("req_total", labels=("tenant",))
        c.labels("a").inc()
        c.labels("b").inc()
        c.labels("b").inc()
        dropped = reg.get(MetricsRegistry.DROPPED_SERIES)
        assert dropped is not None
        assert dropped.value("req_total") == 2.0

    def test_capped_family_keeps_existing_series_working(self):
        reg = MetricsRegistry(max_series_per_family=1)
        c = reg.counter("req_total", labels=("tenant",))
        c.labels("a").inc()
        c.labels("b").inc()  # dropped
        c.labels("a").inc()  # still the real child
        assert c.value("a") == 2.0


def _golden_registry() -> MetricsRegistry:
    """A small hand-built registry with stable, exporter-covering state."""
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "Requests seen.",
                    labels=("tenant", "node"))
    c.labels("acme", "worker0").inc()
    c.labels("acme", "worker0").inc()
    c.labels("beta", "worker1").inc(3)
    reg.gauge("queue_depth", "Messages queued.",
              labels=("engine",)).labels("dne:worker0").set(7)
    h = reg.histogram("latency_us", "Request latency.", labels=("tenant",),
                      low=1.0, high=16.0, sub_buckets=2)
    for value in (0.5, 1.0, 1.5, 2.0, 5.0, 100.0):
        h.labels("acme").observe(value)
    return reg


class TestExporterGoldens:
    def test_prometheus_text_matches_golden(self):
        text = _golden_registry().prometheus_text()
        assert text == (GOLDEN / "metrics.prom").read_text()

    def test_json_snapshot_matches_golden(self):
        snap = json.dumps(_golden_registry().snapshot(), indent=2,
                          sort_keys=True) + "\n"
        assert snap == (GOLDEN / "metrics.json").read_text()


class TestTraceSchema:
    def test_rejects_malformed_events(self):
        assert validate_chrome_trace([]) == ["top level must be an object"]
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        bad = {"traceEvents": [
            {"name": "", "ph": "X", "ts": 0, "pid": 1, "tid": 1, "dur": 1},
            {"name": "n", "ph": "Z", "ts": 0, "pid": 1, "tid": 1},
            {"name": "n", "ph": "X", "ts": -1, "pid": 1, "tid": 1},
            {"name": "n", "ph": "i", "ts": 0, "pid": 1, "tid": 1, "s": "q"},
            {"name": "n", "ph": "M", "ts": 0, "pid": 1, "tid": 0, "args": {}},
        ]}
        errors = validate_chrome_trace(bad)
        assert len(errors) == 6  # two violations on the ts<0 event


class TestIncidents:
    def test_incident_marks_open_roots_and_exports_globally(self):
        env = Environment()
        tel = Telemetry.install(env)
        root = tel.tracer.start_span("request:/home", node="ingress",
                                     actor="gw")
        tel.tracer.incident("node-crash", "worker1", detail=3)
        tel.tracer.end_span(root, status="error")
        assert [e["name"] for e in root.events] == ["fault:node-crash"]
        trace = tel.tracer.to_chrome()
        assert validate_chrome_trace(trace) == []
        globals_ = [e for e in trace["traceEvents"]
                    if e["ph"] == "i" and e.get("s") == "g"]
        assert len(globals_) == 1
        assert globals_[0]["name"] == "fault:node-crash"


class TestCycleLedger:
    def test_charge_and_fractions(self):
        ledger = CycleLedger(host_ghz=2.0)
        ledger.charge("app", 60.0, where="fn")
        ledger.charge("copy", 30.0, where="tcp")
        ledger.charge("copy", 10.0, where="xdomain")
        ledger.charge("protocol", 0.0)  # no-op
        assert ledger.total_us() == 100.0
        assert ledger.fractions()["copy"] == pytest.approx(0.4)
        assert ledger.overhead_fraction() == pytest.approx(0.4)
        assert ledger.cycles("app") == pytest.approx(60.0 * 2.0 * 1e3)
        assert ledger.sites("copy") == [("tcp", 30.0), ("xdomain", 10.0)]
        with pytest.raises(ValueError):
            ledger.charge("disk", 1.0)
        ledger.reset()
        assert ledger.total_us() == 0.0
