"""Tests for extension features: security domains, multi-ingress LB,
ablation experiments, and the CLI runner."""

import pytest

from repro.config import CostModel
from repro.experiments.__main__ import EXPERIMENTS, main
from repro.ingress import IngressLoadBalancer, PalladiumIngress
from repro.platform import FunctionSpec, ServerlessPlatform, Tenant
from repro.sim import Environment
from repro.workloads import ClientFleet, deploy_http_echo


# ---------------------------------------------------------------------------
# Cross-security-domain copies (§3.1)
# ---------------------------------------------------------------------------

def two_tenant_platform():
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("t1"))
    plat.add_tenant(Tenant("t2"))
    caller = plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("same-tenant", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("other-tenant", "t2", work_us=0), "worker0")
    plat.start()
    return env, plat, caller


def test_same_tenant_is_zero_copy():
    env, plat, caller = two_tenant_platform()

    def body():
        yield env.timeout(30_000)
        yield from caller.invoke("same-tenant", "x", 64)

    env.process(body())
    env.run(until=200_000)
    assert caller.iolib.cross_domain_sends == 0
    assert caller.iolib.intra_sends == 1


def test_cross_tenant_invocation_copies():
    env, plat, caller = two_tenant_platform()
    replies = []

    def body():
        yield env.timeout(30_000)
        reply = yield from caller.invoke("other-tenant", "secret", 64)
        replies.append(reply.payload)

    env.process(body())
    env.run(until=200_000)
    assert replies == ["secret"]
    assert caller.iolib.cross_domain_sends >= 1


def test_cross_tenant_buffer_stays_in_destination_pool():
    """The copy lands in the destination tenant's pool; the sender's
    buffer never crosses the domain."""
    env, plat, caller = two_tenant_platform()

    def body():
        yield env.timeout(30_000)
        yield from caller.invoke("other-tenant", "x", 64)

    env.process(body())
    env.run(until=200_000)
    # pools fully recycled afterwards => no foreign buffers trapped
    for tenant in ("t1", "t2"):
        pool = plat.pool_for(tenant, "worker0")
        assert pool.free_count == pool.buffer_count - plat.recv_buffers


def test_infrastructure_endpoints_are_trusted():
    """The ingress adapter (tenant None) never triggers domain copies."""
    env, plat, caller = two_tenant_platform()
    runtime = plat.runtimes["worker0"]
    assert not runtime.crosses_security_domain("t1", "same-tenant")
    assert runtime.crosses_security_domain("t1", "other-tenant")
    assert not runtime.crosses_security_domain("t1", "_some_adapter")


def test_cross_tenant_remote_rejected():
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("t1"))
    plat.add_tenant(Tenant("t2"))
    caller = plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("remote-other", "t2", work_us=0), "worker1")
    plat.start()

    def body():
        yield env.timeout(30_000)
        yield from caller.invoke("remote-other", "x", 64)

    env.process(body())
    with pytest.raises(RuntimeError, match="cross-tenant"):
        env.run(until=200_000)


# ---------------------------------------------------------------------------
# Multi-instance ingress load balancing
# ---------------------------------------------------------------------------

def balanced_setup(instances=2):
    env = Environment()
    plat = ServerlessPlatform(env)
    resolver = deploy_http_echo(plat)
    gateways = []
    for _ in range(instances):
        gw = PalladiumIngress(env, plat.cluster, plat.fabric, plat.cost,
                              resolver, min_workers=1)
        gw.add_tenant("echo", buffers=256)
        plat.coordinator.subscribe(gw.routes)
        gateways.append(gw)
    plat.register_external(gateways[0].AGENT, "ingress")
    balancer = IngressLoadBalancer(gateways)
    balancer.start()
    plat.start()
    return env, plat, balancer


def test_balancer_requires_instances():
    with pytest.raises(ValueError):
        IngressLoadBalancer([])


def test_balancer_end_to_end():
    env, plat, balancer = balanced_setup()
    fleet = ClientFleet(env, plat.cluster, balancer, path="/echo",
                        body_bytes=128, payload="x")

    def kickoff():
        yield env.timeout(50_000)
        fleet.spawn(8)

    env.process(kickoff())
    env.run(until=300_000)
    assert fleet.total_completed() > 100
    assert fleet.total_errors() == 0


def test_balancer_spreads_connections():
    env, plat, balancer = balanced_setup()
    for _ in range(32):
        balancer.connect()
    per_instance = [i.stats.accepted for i in balancer.instances]
    # connections spread, not all on one instance
    fleet_conns = len(balancer._owner)
    assert fleet_conns == 32
    owners = {id(owner) for owner, _conn in balancer._owner.values()}
    assert len(owners) == 2


def test_balancer_aggregates_stats():
    env, plat, balancer = balanced_setup()
    fleet = ClientFleet(env, plat.cluster, balancer, path="/echo",
                        body_bytes=128, payload="x")

    def kickoff():
        yield env.timeout(50_000)
        fleet.spawn(4)

    env.process(kickoff())
    env.run(until=200_000)
    assert balancer.completed() == fleet.total_completed()


# ---------------------------------------------------------------------------
# Ablation experiments (quick shapes)
# ---------------------------------------------------------------------------

def test_sidecar_ablation_shape():
    from repro.experiments import run_sidecar_ablation
    result = run_sidecar_ablation(clients=12, duration_us=60_000)
    container = result.find_row(sidecar="container-sidecar")
    ebpf = result.find_row(sidecar="ebpf-sidecar")
    shared = result.find_row(sidecar="shared-sidecar")
    assert container["rps"] < ebpf["rps"] <= shared["rps"] * 1.05
    assert container["latency_ms"] > ebpf["latency_ms"]


def test_placement_ablation_shape():
    from repro.experiments import run_placement_ablation
    result = run_placement_ablation(clients=12, duration_us=80_000)
    pd_local = result.find_row(data_plane="palladium", placement="co-located")
    pd_split = result.find_row(data_plane="palladium", placement="split")
    sp_local = result.find_row(data_plane="spright", placement="co-located")
    sp_split = result.find_row(data_plane="spright", placement="split")
    pd_hit = pd_split["latency_ms"] / pd_local["latency_ms"]
    sp_hit = sp_split["latency_ms"] / sp_local["latency_ms"]
    # kernel-stack data plane suffers more from lost locality (§2)
    assert sp_hit > pd_hit > 1.0


# ---------------------------------------------------------------------------
# Fig. 14 (compressed) smoke
# ---------------------------------------------------------------------------

def test_fig14_palladium_scales_up():
    from repro.experiments import run_fig14
    result = run_fig14("palladium", steps=4, time_scale=0.02, cost_scale=8.0)
    assert any("scale events" in n for n in result.notes)
    cores = [row[1] for row in result.rows]
    assert max(cores) > min(c for c in cores if c > 0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig12", "fig16", "table2"):
        assert name in out


def test_cli_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["figXX"])


def test_cli_no_args_shows_help(capsys):
    assert main([]) == 2


def test_cli_quick_table1(capsys):
    assert main(["--quick", "table1"]) == 0
    out = capsys.readouterr().out
    assert "PALLADIUM" in out


def test_cli_registry_complete():
    for key in ("fig09", "fig11", "fig12", "fig13", "fig14", "fig15",
                "fig16", "table1", "table2"):
        assert key in EXPERIMENTS
