"""Tests for the fault-injection subsystem and the recovery machinery.

Covers the failure model end to end: QP error states with
flush-to-CQE semantics, shadow-pool eviction of fault-torn QPs,
reconnect backoff with per-tenant retry budgets, reliable-send
retransmission and tenant-visible failures, node-crash failover to
surviving replicas, graceful degradation to the kernel-TCP fallback,
link flap/degrade, fault plans/injectors, and ingress health checks.
"""

import pytest

from repro.config import CostModel
from repro.dataplane import Message
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.hw import build_cluster
from repro.memory import MemoryPool
from repro.platform import (
    ElasticPlatform,
    FunctionSpec,
    InvokeTimeout,
    SendError,
    ServerlessPlatform,
    Tenant,
)
from repro.rdma import (
    ConnectionManager,
    Opcode,
    QPState,
    QpError,
    RdmaFabric,
    WorkRequest,
)
from repro.sim import Environment, RngRegistry


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def make_fabric(cost=None):
    env = Environment()
    cost = cost or CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    r0 = fabric.install_rnic("worker0")
    r1 = fabric.install_rnic("worker1")
    return env, cost, fabric, r0, r1


def make_pools(env, r0, r1, count=16, size=4096):
    p0 = MemoryPool(env, "t", count, size, name="p0")
    p1 = MemoryPool(env, "t", count, size, name="p1")
    r0.register_pool(p0)
    r1.register_pool(p1)
    return p0, p1


def warm(env, cm, count=1):
    holder = {}

    def setup():
        holder["pool"] = yield from cm.warm_up("worker1", "t", count)

    env.process(setup())
    env.run()
    return holder["pool"]


def make_platform(elastic=False, **kwargs):
    env = Environment()
    cls = ElasticPlatform if elastic else ServerlessPlatform
    plat = cls(env, **kwargs)
    plat.add_tenant(Tenant("t1"))
    return env, plat


def drive(env, body, until=500_000, warmup=30_000):
    def driver():
        yield env.timeout(warmup)  # RC warm-up
        yield from body()

    env.process(driver())
    env.run(until=until)


# ---------------------------------------------------------------------------
# QP error state + flush-to-CQE (RNIC level)
# ---------------------------------------------------------------------------

def test_posts_on_errored_qp_flush_to_failed_cqes_in_order():
    env, cost, fabric, r0, r1 = make_fabric()
    p0, p1 = make_pools(env, r0, r1)
    cm = ConnectionManager(env, fabric, "worker0", cost)
    qp = warm(env, cm, 1)[0]
    cm.fail_connections(cause="injected")
    assert qp.state == QPState.ERROR

    wrs = [WorkRequest(opcode=Opcode.SEND, length=8) for _ in range(3)]
    for wr in wrs:
        r0.post_send(qp, wr)
    env.run()
    completions = []
    while True:
        c = r0.cq.try_get()
        if c is None:
            break
        completions.append(c)
    # every post flushed: failed CQE each, FIFO order, nothing executed
    assert [c.wr_id for c in completions] == [wr.wr_id for wr in wrs]
    assert all(c.flushed and not c.ok for c in completions)
    assert r0.flushed_cqes == 3
    assert qp.pending_wrs == 0


def test_inline_execute_on_errored_qp_raises():
    env, cost, fabric, r0, r1 = make_fabric()
    make_pools(env, r0, r1)
    cm = ConnectionManager(env, fabric, "worker0", cost)
    qp = warm(env, cm, 1)[0]
    cm.fail_connections(cause="injected")
    caught = []

    def poster():
        try:
            yield from r0.execute(qp, WorkRequest(opcode=Opcode.SEND, length=4))
        except QpError as exc:
            caught.append(exc.cause)

    env.process(poster())
    env.run()
    assert caught == ["injected"]


def test_peer_nic_death_errors_inflight_send():
    """A SEND stalled in RNR flushes when the peer NIC dies."""
    env, cost, fabric, r0, r1 = make_fabric()
    p0, p1 = make_pools(env, r0, r1)
    cm = ConnectionManager(env, fabric, "worker0", cost)
    qp = warm(env, cm, 1)[0]
    src = p0.get("dne0")
    src.write("dne0", "x", 1)
    # No receive buffer posted on worker1: the SEND blocks in RNR.
    r0.post_send(qp, WorkRequest(opcode=Opcode.SEND, buffer=src, length=1))
    def killer():
        yield env.timeout(50_000)
        r1.fail()

    env.process(killer())
    env.run()
    completion = r0.cq.try_get()
    assert completion is not None and completion.flushed and not completion.ok
    assert qp.state == QPState.ERROR


def test_fail_connections_errors_both_ends():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost)
    qp = warm(env, cm, 2)[0]
    failed = cm.fail_connections(remote="worker1", tenant="t")
    assert failed == 2
    assert qp.state == QPState.ERROR and qp.peer.state == QPState.ERROR
    # idempotent: already-errored QPs are not failed again
    assert cm.fail_connections() == 0


# ---------------------------------------------------------------------------
# ConnectionManager: eviction, re-warm, reconnect backoff, budgets
# ---------------------------------------------------------------------------

def test_errored_qps_evicted_from_pool_on_next_touch():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost)
    warm(env, cm, 4)
    assert cm.pooled_count() == 4
    cm.fail_peer("worker1")
    holder = {}

    def get():
        holder["qp"] = yield from cm.get_connection("worker1", "t")

    env.process(get())
    env.run()
    # the pool was purged, then a fresh connection established cold
    assert cm.evicted_qps == 4
    assert not holder["qp"].is_errored
    assert cm.pooled_count() == 1


def test_deactivate_idle_evicts_errored_and_demotes_idle():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost)
    holder = {}

    def setup():
        yield from cm.warm_up("worker1", "t", 3)
        holder["qp"] = yield from cm.get_connection("worker1", "t")

    env.process(setup())
    env.run()
    qp = holder["qp"]
    assert qp.is_active
    # error one of the shadow QPs, then sweep
    shadow = next(q for q in cm._pool[("worker1", "t")] if q is not qp)
    cm.fail_connections(count=0)  # count=0: no-op guard
    cm._fail_qp(shadow, "injected")
    demoted = cm.deactivate_idle()
    assert demoted == 1  # the idle active QP went back to shadow
    assert qp.state == QPState.INACTIVE
    assert shadow not in cm._pool[("worker1", "t")]
    assert fabric.rnic("worker0").active_qps == 0


def test_warm_up_refills_pool_after_teardown():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost)
    warm(env, cm, 4)
    cm.fail_peer("worker1")
    assert cm.evict_errored() == 4
    pool = warm(env, cm, 4)
    assert len(pool) == 4
    assert not any(qp.is_errored for qp in pool)


def test_connect_to_dead_peer_costs_setup_and_errors():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost)
    cm.peer_alive = lambda remote: False
    holder = {}

    def get():
        holder["qp"] = yield from cm.get_connection("worker1", "t")
        holder["t"] = env.now

    env.process(get())
    env.run()
    assert holder["qp"].is_errored
    assert holder["t"] == pytest.approx(cost.rc_setup_us)
    assert cm.connect_failures == 1
    assert cm.pooled_count() == 0  # the errored QP was never pooled


def test_reconnect_backs_off_until_peer_returns():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost,
                           reconnect_base_us=1_000.0,
                           reconnect_cap_us=8_000.0)
    alive = {"up": False}
    cm.peer_alive = lambda remote: alive["up"]
    cm.schedule_reconnect("worker1", "t")
    # duplicate schedule for the same (peer, tenant) is refused
    assert cm.schedule_reconnect("worker1", "t") is None

    def revive():
        yield env.timeout(20_000)
        alive["up"] = True

    env.process(revive())
    env.run()
    assert cm.reconnects_succeeded == 1
    assert cm.pooled_count() == 1
    # attempts at 1,3,7,15,23 ms (capped at 8): >= 4 before revival
    assert cm.reconnect_attempts["t"] >= 4


def test_reconnect_respects_tenant_retry_budget():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost,
                           reconnect_base_us=1_000.0,
                           reconnect_cap_us=2_000.0,
                           tenant_retry_budget=3)
    cm.peer_alive = lambda remote: False  # never comes back
    cm.schedule_reconnect("worker1", "t")
    env.run()
    assert cm.reconnect_attempts["t"] == 3
    assert cm.budget_exhausted >= 1
    assert cm.reconnects_succeeded == 0
    # a new schedule is refused outright once the budget is spent
    assert cm.schedule_reconnect("worker1", "t") is None


# ---------------------------------------------------------------------------
# iolib: reliable sends, retry exhaustion, invoke timeouts
# ---------------------------------------------------------------------------

def _sink(ctx, msg):
    """Handler for raw iolib sends (no rid/reply_to to respond to)."""
    yield from ctx.compute()


def test_reliable_send_succeeds_without_retransmission():
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", handler=_sink, work_us=0),
                "worker1")
    plat.start()

    def body():
        yield from client.iolib.send("fn:client", "server", "ping", 64,
                                     Message(tenant="t1"),
                                     timeout_us=20_000.0)

    drive(env, body)
    assert client.iolib.retransmissions == 0
    assert client.iolib.send_failures == 0
    assert plat.functions["server"].handled == 1


def test_reliable_send_retry_exhaustion_is_tenant_visible():
    """An unroutable destination nacks every attempt -> SendError."""
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker1")
    plat.start()
    caught = []

    def body():
        plat.coordinator.function_terminated("server")
        try:
            yield from client.iolib.send("fn:client", "server", "ping", 64,
                                         Message(tenant="t1"),
                                         timeout_us=5_000.0,
                                         max_retries=2)
        except SendError as exc:
            caught.append(str(exc))

    drive(env, body)
    assert len(caught) == 1 and "after 3 attempts" in caught[0]
    assert client.iolib.retransmissions == 2
    assert client.iolib.send_failures == 1


def test_invoke_times_out_against_crashed_node_without_recovery():
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker1")
    plat.runtimes["worker0"].invoke_timeout_us = 10_000.0
    plat.start()
    caught = []

    pool = plat.pool_for("t1", "worker0")
    baseline = {}

    def body():
        baseline["free"] = pool.free_count
        # no recovery: routes still point at the dead node
        plat.crash_node("worker1", recovery=False)
        try:
            yield from client.invoke("server", "ping", 64)
        except InvokeTimeout:
            caught.append(env.now)

    drive(env, body, warmup=40_000)
    assert len(caught) == 1
    assert client.invoke_timeouts == 1
    # the in-flight buffer was flushed and recycled home
    assert pool.free_count == baseline["free"]


# ---------------------------------------------------------------------------
# node crash: coordinator withdrawal + replica failover + restart
# ---------------------------------------------------------------------------

def test_node_crash_fails_over_to_surviving_replica():
    env, plat = make_platform(elastic=True)
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    spec = FunctionSpec("svc", "t1", work_us=5)
    plat.deploy_service(spec, "worker1")   # svc#0 on worker1
    plat.scale_out(spec, "worker0")        # svc#1 on worker0
    plat.start()
    got = []

    def body():
        plat.crash_node("worker1")
        for _ in range(4):
            reply = yield from client.invoke("svc", "ping", 64)
            got.append(reply.payload)

    drive(env, body, warmup=40_000)
    assert got == ["ping"] * 4
    # only the survivor served; the dead replica left the rotation
    assert plat.services["svc"].replicas == ["svc#1"]
    assert plat.functions["svc#1"].handled == 4
    assert plat.functions["svc#0"].handled == 0
    # the coordinator withdrew the dead node's routes everywhere
    assert not plat.engines["worker0"].routes.has_route("svc#0")


def test_node_restart_restores_replicas_and_routes():
    env, plat = make_platform(elastic=True)
    plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    spec = FunctionSpec("svc", "t1", work_us=5)
    plat.deploy_service(spec, "worker1")
    plat.scale_out(spec, "worker0")
    plat.start()

    def body():
        plat.crash_node("worker1")
        yield env.timeout(50_000)
        plat.restart_node("worker1")

    drive(env, body, warmup=40_000)
    assert sorted(plat.services["svc"].replicas) == ["svc#0", "svc#1"]
    assert plat.engines["worker0"].routes.node_for("svc#0") == "worker1"
    assert plat.runtimes["worker1"].alive
    engine = plat.engines["worker1"]
    assert engine.available and engine.crashes == 1 and engine.restarts == 1
    # surviving engines re-established connectivity in the background
    assert plat.engines["worker0"].conn_mgr.reconnects_succeeded >= 1


def test_crashed_instance_drops_traffic_until_recover():
    env, plat = make_platform()
    server = plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker1")
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.start()

    pool = plat.pool_for("t1", "worker1")
    baseline = {}

    def body():
        baseline["free"] = pool.free_count
        server.crash()
        yield from client.iolib.send("fn:client", "server", "x", 64,
                                     Message(tenant="t1"))
        yield env.timeout(20_000)

    drive(env, body)
    assert server.handled == 0
    assert server.dropped == 1
    # the dropped delivery's buffer was recycled to the pool
    assert pool.free_count == baseline["free"]


# ---------------------------------------------------------------------------
# engine crash: kernel-TCP graceful degradation
# ---------------------------------------------------------------------------

def test_engine_crash_degrades_to_kernel_tcp_and_back():
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker1")
    plat.start()
    got = []

    def body():
        for engine in plat.engines.values():
            engine.crash()
        reply = yield from client.invoke("server", "ping", 64)
        got.append(reply.payload)
        # engines come back: traffic returns to the fast path
        for engine in plat.engines.values():
            engine.restart()
        yield env.timeout(5_000)
        reply = yield from client.invoke("server", "ping2", 64)
        got.append(reply.payload)

    drive(env, body, warmup=40_000)
    assert got == ["ping", "ping2"]
    # request + reply each crossed the kernel stack exactly once
    assert plat.tcp_fallback.sends == 2
    assert plat.tcp_fallback.delivered == 2
    assert client.iolib.fallback_sends == 1
    # after the restart the engine path carried the second round trip
    assert plat.engines["worker0"].stats.tx_messages >= 1


def test_engine_restart_requires_crash_first():
    env, plat = make_platform()
    plat.start()
    with pytest.raises(RuntimeError):
        plat.engines["worker0"].restart()


# ---------------------------------------------------------------------------
# link faults
# ---------------------------------------------------------------------------

def test_link_failure_stalls_transmits_until_recovery():
    env = Environment()
    cluster = build_cluster(env, CostModel())
    link = cluster.fabric_link("worker0", "worker1")
    link.fail()
    done = []

    def tx():
        yield from link.transmit(1000)
        done.append(env.now)

    env.process(tx())

    def healer():
        yield env.timeout(7_000)
        link.recover()

    env.process(healer())
    env.run()
    assert len(done) == 1 and done[0] >= 7_000
    assert link.flaps == 1
    assert link.downtime_us == pytest.approx(7_000)


def test_link_degrade_stretches_serialization():
    env = Environment()
    cluster = build_cluster(env, CostModel())
    link = cluster.fabric_link("worker0", "worker1")
    times = {}

    def tx(label):
        t0 = env.now
        yield from link.transmit(100_000)
        times[label] = env.now - t0

    env.process(tx("clean"))
    env.run()
    link.degrade(4.0)
    env.process(tx("degraded"))
    env.run()
    link.restore()
    env.process(tx("restored"))
    env.run()
    lat = link.base_latency_us
    assert times["degraded"] == pytest.approx(
        4.0 * (times["clean"] - lat) + lat)
    assert times["restored"] == pytest.approx(times["clean"])


# ---------------------------------------------------------------------------
# fault plans + injector
# ---------------------------------------------------------------------------

def test_plan_validates_kinds_and_times():
    with pytest.raises(ValueError):
        FaultEvent(10.0, "meteor-strike", "worker1")
    with pytest.raises(ValueError):
        FaultEvent(-1.0, "node-crash", "worker1")


def test_plan_events_sorted_and_expanded():
    plan = (FaultPlan()
            .node_crash(5_000, "worker1", down_us=2_000)
            .link_flap(1_000, "worker0", "worker1", down_us=500))
    kinds = [e.kind for e in plan]
    assert kinds == ["link-down", "link-down", "link-up", "link-up",
                     "node-crash", "node-restart"]
    assert len(plan) == 6


def test_empty_plan_is_a_no_op():
    env, plat = make_platform()
    plat.start()
    injector = FaultInjector(env, plat, FaultPlan())
    assert injector.start() is None
    env.run(until=10_000)
    assert injector.timeline == []
    with pytest.raises(RuntimeError):
        injector.start()  # double start rejected


def test_injector_applies_node_crash_and_restart_on_schedule():
    env, plat = make_platform()
    plat.start()
    plan = FaultPlan().node_crash(40_000, "worker1", down_us=30_000)
    FaultInjector(env, plat, plan).start()
    env.run(until=50_000)
    assert not plat.runtimes["worker1"].alive
    env.run(until=100_000)
    assert plat.runtimes["worker1"].alive


def test_injector_records_timeline():
    env, plat = make_platform()
    plat.start()
    plan = (FaultPlan()
            .qp_error(35_000, "worker0", remote="worker1", count=2)
            .link_flap(40_000, "worker0", "worker1", down_us=1_000,
                       bidirectional=False))
    injector = FaultInjector(env, plat, plan)
    injector.start()
    env.run(until=60_000)
    assert injector.timeline == [
        (35_000.0, "qp-error", "worker0", 2),
        (40_000.0, "link-down", "worker0->worker1", None),
        (41_000.0, "link-up", "worker0->worker1", None),
    ]


def test_injector_mempool_exhaustion_blocks_then_releases():
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker0")
    plat.start()
    plan = FaultPlan().mempool_exhaust(35_000, "worker0", "t1",
                                       duration_us=25_000)
    injector = FaultInjector(env, plat, plan)
    injector.start()
    done = []

    pool = plat.pool_for("t1", "worker0")
    baseline = {}

    def body():
        baseline["free"] = pool.free_count
        yield env.timeout(10_000)  # t=40k: inside the exhaustion window
        yield from client.invoke("server", "ping", 64)
        done.append(env.now)

    drive(env, body, warmup=30_000)
    # the send blocked on the drained pool until the release at t=60k
    assert len(done) == 1 and done[0] >= 60_000
    assert pool.free_count == baseline["free"]


# ---------------------------------------------------------------------------
# ingress health checks (balancer level)
# ---------------------------------------------------------------------------

class _FakeIngress:
    """Duck-typed gateway instance for balancer unit tests."""

    def __init__(self, env):
        self.env = env
        self.healthy = True
        self.siblings = []
        self.submitted = []

    def start(self):
        pass

    def connect(self):
        from repro.ingress.gateway import ClientConnection
        return ClientConnection(self.env)

    def submit(self, conn, request):
        self.submitted.append(request)


def test_balancer_health_loop_ejects_dead_instance():
    from repro.ingress import IngressLoadBalancer
    env = Environment()
    instances = [_FakeIngress(env), _FakeIngress(env)]
    lb = IngressLoadBalancer(instances, health_check_period_us=1_000.0)
    lb.start()
    conns = [lb.connect() for _ in range(8)]
    victim = instances[0]
    victim.healthy = False
    env.run(until=2_500)
    # every connection owned by the dead instance was reassigned
    assert all(owner is instances[1] for owner, _conn in lb._owner.values())
    assert lb.failovers >= 1


def test_balancer_submit_fails_over_between_health_checks():
    from repro.ingress import IngressLoadBalancer
    from repro.net import HttpRequest
    env = Environment()
    instances = [_FakeIngress(env), _FakeIngress(env)]
    lb = IngressLoadBalancer(instances)  # no health loop
    lb.start()
    conn = lb.connect()
    owner, _conn = lb._owner[conn.conn_id]
    owner.healthy = False
    lb.submit(conn, HttpRequest("/"))
    survivor = next(i for i in instances if i is not owner)
    assert survivor.submitted and not owner.submitted
    assert lb.failovers == 1


def test_balancer_owner_map_bounded_under_connection_churn():
    # Regression: _owner grew one entry per connect() forever — a
    # churn workload (connect, use, close, repeat) leaked the map.
    from repro.ingress import IngressLoadBalancer
    env = Environment()
    instances = [_FakeIngress(env), _FakeIngress(env)]
    lb = IngressLoadBalancer(instances)
    lb.start()
    for _ in range(10_000):
        conn = lb.connect()
        lb.close(conn)
    # the amortized sweep keeps the map near the live set, not the
    # total ever connected
    assert len(lb._owner) < 1_000
    lb.prune_closed()
    assert len(lb._owner) == 0


def test_balancer_remove_instance_resprays_connections():
    from repro.ingress import IngressLoadBalancer
    env = Environment()
    instances = [_FakeIngress(env), _FakeIngress(env)]
    lb = IngressLoadBalancer(instances)
    lb.start()
    conns = [lb.connect() for _ in range(8)]
    lb.remove_instance(instances[0])
    assert all(owner is instances[1] for owner, _conn in lb._owner.values())
    assert len(lb._owner) == 8
    with pytest.raises(ValueError):
        lb.remove_instance(instances[1])  # never remove the last one


def test_fault_plan_gateway_crash_expands_to_restart():
    plan = FaultPlan().gateway_crash(10_000.0, "gw2", down_us=5_000.0)
    kinds = [(e.at_us, e.kind, e.target) for e in plan.events]
    assert kinds == [(10_000.0, "gateway-crash", "gw2"),
                     (15_000.0, "gateway-restart", "gw2")]


def test_injector_gateway_crash_flips_health_flag():
    env = Environment()
    gw = _FakeIngress(env)
    plan = FaultPlan().gateway_crash(1_000.0, "gw0", down_us=2_000.0)
    injector = FaultInjector(env, platform=None, plan=plan)
    injector.register_gateway("gw0", _WithFailRecover(gw))
    injector.start()
    env.run(until=1_500)
    assert not gw.healthy
    env.run(until=3_500)
    assert gw.healthy
    assert [(k, t) for _, k, t, _ in injector.timeline] == [
        ("gateway-crash", "gw0"), ("gateway-restart", "gw0")]


def test_injector_rejects_unregistered_gateway():
    env = Environment()
    plan = FaultPlan().gateway_crash(1_000.0, "nope")
    injector = FaultInjector(env, platform=None, plan=plan)
    injector.start()
    with pytest.raises(ValueError, match="not registered"):
        env.run(until=2_000)


class _WithFailRecover:
    """Adapter giving _FakeIngress the fail/recover fault surface."""

    def __init__(self, inner):
        self._inner = inner

    def fail(self):
        self._inner.healthy = False

    def recover(self):
        self._inner.healthy = True

    @property
    def healthy(self):
        return self._inner.healthy


def test_palladium_ingress_health_flag():
    from repro.ingress import PalladiumIngress  # noqa: F401 - API check
    env, plat = make_platform()
    # the flag is what the balancer polls; fail/recover toggle it
    from repro.ingress.palladium import PalladiumIngress as PI
    ingress = PI(env, plat.cluster, plat.fabric, CostModel(),
                 lambda path: ("t1", "f"))
    assert ingress.healthy
    ingress.fail()
    assert not ingress.healthy
    ingress.recover()
    assert ingress.healthy


# ---------------------------------------------------------------------------
# rng stream isolation (satellite: dedicated "faults" stream)
# ---------------------------------------------------------------------------

def test_fault_stream_does_not_perturb_workload_stream():
    a = RngRegistry(seed=7)
    baseline = [a.stream("workload").random() for _ in range(5)]
    b = RngRegistry(seed=7)
    b.faults().random()  # fault draws interleaved
    with_faults = []
    for _ in range(5):
        with_faults.append(b.stream("workload").random())
        b.faults().random()
    assert with_faults == baseline
