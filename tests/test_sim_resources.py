"""Tests for Resource, Store, and FilterStore (repro.sim.resources)."""

import pytest

from repro.sim import Environment, FilterStore, Resource, SimulationError, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_capacity_validation():
    with pytest.raises(ValueError):
        Resource(Environment(), capacity=0)


def test_resource_serializes_beyond_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def worker(i):
        yield from res.use(10)
        done.append((i, env.now))

    for i in range(4):
        env.process(worker(i))
    env.run()
    assert done == [(0, 10.0), (1, 10.0), (2, 20.0), (3, 20.0)]


def test_resource_immediate_grant_is_synchronous():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    assert req.processed  # fast path: no heap trip
    res.release(req)


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(i):
        yield from res.use(5)
        order.append(i)

    for i in range(5):
        env.process(worker(i))
    env.run()
    assert order == list(range(5))


def test_resource_priority_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        yield from res.use(10)

    def worker(i, priority):
        yield env.timeout(1)
        req = res.request(priority)
        yield req
        order.append(i)
        res.release(req)

    env.process(holder())
    env.process(worker("low", 5))
    env.process(worker("high", 0))
    env.run()
    assert order == ["high", "low"]


def test_resource_release_of_unheld_request_is_error():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()  # queued
    res.cancel(second)
    res.release(first)
    with pytest.raises(SimulationError):
        res.release(first)


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    queued = res.request()
    res.cancel(queued)
    assert res.queue == []
    res.release(first)
    assert res.count == 0


def test_resource_utilization_accounting():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker():
        yield from res.use(30)

    env.process(worker())
    env.run(until=60)
    assert res.utilization() == pytest.approx(0.5)
    assert res.busy_time() == pytest.approx(30.0)


def test_resource_count_reflects_users():
    env = Environment()
    res = Resource(env, capacity=3)
    reqs = [res.request() for _ in range(3)]
    assert res.count == 3
    res.release(reqs[0])
    assert res.count == 2


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    for item in "abc":
        store.put(item)
    env.process(consumer())
    env.run()
    assert got == ["a", "b", "c"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(9)
        store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(9.0, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("a", env.now))
        yield store.put("b")
        log.append(("b", env.now))

    def consumer():
        yield env.timeout(10)
        item = yield store.get()
        log.append(("got-" + item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("a", 0.0) in log
    assert ("b", 10.0) in log  # put unblocked by the get


def test_store_put_nowait_on_full_is_error():
    env = Environment()
    store = Store(env, capacity=1)
    store.put_nowait("a")
    with pytest.raises(SimulationError):
        store.put_nowait("b")


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put_nowait("x")
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_counters():
    env = Environment()
    store = Store(env)
    store.put_nowait(1)
    store.put_nowait(2)
    store.try_get()
    assert store.put_count == 2
    assert store.get_count == 1
    assert len(store) == 1


def test_store_invalid_capacity():
    with pytest.raises(ValueError):
        Store(Environment(), capacity=0)


def test_store_multiple_waiting_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    env.process(consumer("first"))
    env.process(consumer("second"))

    def producer():
        yield env.timeout(1)
        store.put("x")
        store.put("y")

    env.process(producer())
    env.run()
    assert got == [("first", "x"), ("second", "y")]


# ---------------------------------------------------------------------------
# FilterStore
# ---------------------------------------------------------------------------

def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer():
        item = yield store.get(lambda x: x > 5)
        got.append((env.now, item))

    def producer():
        yield env.timeout(1)
        store.put(3)
        yield env.timeout(1)
        store.put(9)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(2.0, 9)]
    assert list(store.items) == [3]  # non-matching item remains


def test_filter_store_plain_get():
    env = Environment()
    store = FilterStore(env)
    store.put_nowait("a")
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    env.process(consumer())
    env.run()
    assert got == ["a"]


def test_filter_store_immediate_match_synchronous():
    env = Environment()
    store = FilterStore(env)
    store.put_nowait(1)
    store.put_nowait(10)
    event = store.get(lambda x: x >= 10)
    assert event.processed
    assert event.value == 10
    assert list(store.items) == [1]


def test_filter_store_multiple_predicates():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(tag, predicate):
        item = yield store.get(predicate)
        got.append((tag, item))

    env.process(consumer("even", lambda x: x % 2 == 0))
    env.process(consumer("odd", lambda x: x % 2 == 1))

    def producer():
        yield env.timeout(1)
        store.put(7)
        store.put(8)

    env.process(producer())
    env.run()
    assert sorted(got) == [("even", 8), ("odd", 7)]
