"""Tests for the RDMA substrate: verbs, QPs, RNIC semantics, connections."""

import pytest

from repro.config import CostModel
from repro.dataplane import Message
from repro.hw import build_cluster
from repro.memory import BufferState, MemoryPool
from repro.rdma import (
    AtomicWord,
    ConnectionManager,
    Opcode,
    QPState,
    RDMA_HEADER_BYTES,
    RdmaFabric,
    ReceiveBufferRegistry,
    RegistrationError,
    WorkRequest,
)
from repro.sim import Environment


def make_fabric(cost=None):
    env = Environment()
    cost = cost or CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    r0 = fabric.install_rnic("worker0")
    r1 = fabric.install_rnic("worker1")
    return env, cost, fabric, r0, r1


def make_pools(env, r0, r1, count=16, size=4096):
    p0 = MemoryPool(env, "t", count, size, name="p0")
    p1 = MemoryPool(env, "t", count, size, name="p1")
    r0.register_pool(p0)
    r1.register_pool(p1)
    return p0, p1


def connect(env, fabric, cost):
    cm = ConnectionManager(env, fabric, "worker0", cost)
    holder = {}

    def setup():
        yield from cm.warm_up("worker1", "t", 1)
        holder["qp"] = yield from cm.get_connection("worker1", "t")

    env.process(setup())
    env.run()
    return cm, holder["qp"]


# ---------------------------------------------------------------------------
# verbs
# ---------------------------------------------------------------------------

def test_wire_bytes_by_opcode():
    send = WorkRequest(opcode=Opcode.SEND, length=1000)
    assert send.wire_bytes() == RDMA_HEADER_BYTES + 1000
    read = WorkRequest(opcode=Opcode.READ, length=1000)
    assert read.wire_bytes() == RDMA_HEADER_BYTES
    cas = WorkRequest(opcode=Opcode.CAS)
    assert cas.wire_bytes() == RDMA_HEADER_BYTES + 16


def test_wr_ids_unique():
    a = WorkRequest(opcode=Opcode.SEND)
    b = WorkRequest(opcode=Opcode.SEND)
    assert a.wr_id != b.wr_id


# ---------------------------------------------------------------------------
# RBR table
# ---------------------------------------------------------------------------

def test_rbr_insert_consume():
    rbr = ReceiveBufferRegistry()
    rbr.insert(1, "buf")
    assert rbr.consume(1) == "buf"
    assert len(rbr) == 0
    assert rbr.posted == 1 and rbr.consumed == 1


def test_rbr_duplicate_insert_rejected():
    rbr = ReceiveBufferRegistry()
    rbr.insert(1, "a")
    with pytest.raises(KeyError):
        rbr.insert(1, "b")


def test_rbr_missing_consume_rejected():
    with pytest.raises(KeyError):
        ReceiveBufferRegistry().consume(9)


# ---------------------------------------------------------------------------
# MR registration
# ---------------------------------------------------------------------------

def test_unregistered_buffer_rejected():
    env, cost, fabric, r0, r1 = make_fabric()
    rogue = MemoryPool(env, "t", 2, 64)
    buf = rogue.get("a")
    with pytest.raises(RegistrationError):
        r0.mrt.lookup_buffer(buf)


def test_register_idempotent():
    env, cost, fabric, r0, r1 = make_fabric()
    pool = MemoryPool(env, "t", 2, 64)
    region1 = r0.register_pool(pool)
    region2 = r0.register_pool(pool)
    assert region1 is region2


def test_mtt_thrash_flag():
    env, cost, fabric, r0, r1 = make_fabric()
    r0.mrt.mtt_cache_entries = 2
    big = MemoryPool(env, "t", 4096, 2048)  # 4 hugepages
    r0.register_pool(big)
    assert r0.mrt.mtt_thrashing


# ---------------------------------------------------------------------------
# Two-sided SEND semantics
# ---------------------------------------------------------------------------

def test_send_delivers_payload_into_posted_buffer():
    env, cost, fabric, r0, r1 = make_fabric()
    p0, p1 = make_pools(env, r0, r1)
    cm, qp = connect(env, fabric, cost)

    recv_buf = p1.get("dne1")
    r1.post_recv("t", recv_buf, "dne1")
    src = p0.get("dne0")
    src.write("dne0", "hello", 5)

    def sender():
        wr = WorkRequest(opcode=Opcode.SEND, buffer=src, length=5,
                         message=Message(dst="fn-b"))
        yield from r0.execute(qp, wr)

    env.process(sender())
    env.run()
    completion = r1.cq.try_get()
    assert completion.is_recv and completion.ok
    assert completion.buffer is recv_buf
    assert recv_buf.payload == "hello"
    assert completion.message.dst == "fn-b"
    assert recv_buf.state == BufferState.IN_USE


def test_send_stalls_on_empty_rq_until_post():
    """Empty shared RQ = RNR: the transfer waits for a receive buffer."""
    env, cost, fabric, r0, r1 = make_fabric()
    p0, p1 = make_pools(env, r0, r1)
    cm, qp = connect(env, fabric, cost)
    src = p0.get("dne0")
    src.write("dne0", "x", 1)
    done = []

    def sender():
        wr = WorkRequest(opcode=Opcode.SEND, buffer=src, length=1)
        yield from r0.execute(qp, wr)
        done.append(env.now)

    def late_post():
        yield env.timeout(500)
        r1.post_recv("t", p1.get("dne1"), "dne1")

    start = env.now
    env.process(sender())
    env.process(late_post())
    env.run()
    assert done and done[0] >= start + 500


def test_oversized_send_fails_receive():
    env, cost, fabric, r0, r1 = make_fabric()
    p0, _ = make_pools(env, r0, r1)
    small = MemoryPool(env, "t", 2, 16, name="small")
    r1.register_pool(small)
    cm, qp = connect(env, fabric, cost)
    r1.post_recv("t", small.get("dne1"), "dne1")
    src = p0.get("dne0")
    src.write("dne0", "jumbo", 1024)

    def sender():
        wr = WorkRequest(opcode=Opcode.SEND, buffer=src, length=1024)
        yield from r0.execute(qp, wr)

    env.process(sender())
    env.run()
    completion = r1.cq.try_get()
    assert completion.is_recv and not completion.ok


def test_srq_is_per_tenant():
    env, cost, fabric, r0, r1 = make_fabric()
    assert r1.srq("a") is r1.srq("a")
    assert r1.srq("a") is not r1.srq("b")


# ---------------------------------------------------------------------------
# One-sided semantics
# ---------------------------------------------------------------------------

def test_write_is_receiver_oblivious_and_counts_races():
    env, cost, fabric, r0, r1 = make_fabric()
    p0, p1 = make_pools(env, r0, r1)
    cm, qp = connect(env, fabric, cost)
    target = p1.get("fn:victim")  # a function is using this buffer
    src = p0.get("dne0")
    src.write("dne0", "overwrite", 9)

    def writer():
        wr = WorkRequest(opcode=Opcode.WRITE, buffer=src, length=9,
                         remote_buffer=target)
        yield from r0.execute(qp, wr)

    env.process(writer())
    env.run()
    assert target.payload == "overwrite"  # landed despite the owner
    assert r1.potential_races == 1


def test_write_with_expected_owner_not_a_race():
    env, cost, fabric, r0, r1 = make_fabric()
    p0, p1 = make_pools(env, r0, r1)
    cm, qp = connect(env, fabric, cost)
    target = p1.get("slots:worker0")
    src = p0.get("dne0")
    src.write("dne0", "ok", 2)

    def writer():
        wr = WorkRequest(opcode=Opcode.WRITE, buffer=src, length=2,
                         remote_buffer=target,
                         expected_owner="slots:worker0")
        yield from r0.execute(qp, wr)

    env.process(writer())
    env.run()
    assert r1.potential_races == 0


def test_read_returns_remote_payload():
    env, cost, fabric, r0, r1 = make_fabric()
    p0, p1 = make_pools(env, r0, r1)
    cm, qp = connect(env, fabric, cost)
    remote = p1.get("dne1")
    remote.write("dne1", "remote-data", 11)
    got = []

    def reader():
        wr = WorkRequest(opcode=Opcode.READ, remote_buffer=remote,
                         length=11, signaled=False)
        completion = yield from r0.execute(qp, wr)
        got.append(completion.payload)

    env.process(reader())
    env.run()
    assert got == ["remote-data"]


def test_cas_swaps_only_on_match():
    env, cost, fabric, r0, r1 = make_fabric()
    cm, qp = connect(env, fabric, cost)
    word = AtomicWord("worker1", 0)
    outcomes = []

    def caser():
        wr = WorkRequest(opcode=Opcode.CAS, compare=0, swap=7, signaled=False,
                         word=word)
        c = yield from r0.execute(qp, wr)
        outcomes.append(c.old_value)
        wr2 = WorkRequest(opcode=Opcode.CAS, compare=0, swap=9, signaled=False,
                          word=word)
        c2 = yield from r0.execute(qp, wr2)
        outcomes.append(c2.old_value)

    env.process(caser())
    env.run()
    assert outcomes == [0, 7]
    assert word.value == 7  # second CAS failed, word unchanged


def test_cas_wrong_node_rejected():
    env, cost, fabric, r0, r1 = make_fabric()
    cm, qp = connect(env, fabric, cost)
    word = AtomicWord("ingress", 0)

    def caser():
        wr = WorkRequest(opcode=Opcode.CAS, compare=0, swap=1, signaled=False,
                         word=word)
        yield from r0.execute(qp, wr)

    env.process(caser())
    with pytest.raises(ValueError):
        env.run()


# ---------------------------------------------------------------------------
# Connection manager / shadow QPs
# ---------------------------------------------------------------------------

def test_connection_setup_takes_rc_time():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost)
    got = []

    def setup():
        qp = yield from cm.get_connection("worker1", "t")
        got.append((env.now, qp))

    env.process(setup())
    env.run()
    assert got[0][0] >= cost.rc_setup_us


def test_warm_up_establishes_in_parallel():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost, conns_per_peer=4)

    def setup():
        yield from cm.warm_up("worker1", "t")

    env.process(setup())
    env.run()
    # 4 handshakes in parallel: one rc_setup, not four
    assert env.now == pytest.approx(cost.rc_setup_us)
    assert cm.pooled_count() == 4


def test_pooled_connection_reused_without_setup():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost)
    times = []

    def setup():
        yield from cm.warm_up("worker1", "t", 2)
        t0 = env.now
        yield from cm.get_connection("worker1", "t")
        times.append(env.now - t0)

    env.process(setup())
    env.run()
    assert times[0] < 10  # activation only, no 20 ms handshake


def test_shadow_qp_activation_and_demotion():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost)
    state = {}

    def setup():
        yield from cm.warm_up("worker1", "t", 2)
        qp = yield from cm.get_connection("worker1", "t")
        state["qp"] = qp

    env.process(setup())
    env.run()
    qp = state["qp"]
    assert qp.state == QPState.ACTIVE
    assert r0.active_qps == 1
    demoted = cm.deactivate_idle()
    assert demoted == 1
    assert qp.state == QPState.INACTIVE
    assert r0.active_qps == 0


def test_qp_thrash_penalty_applied():
    env, cost, fabric, r0, r1 = make_fabric()
    r0.active_qps = cost.max_active_qps + 1
    assert r0._op_penalty() == cost.qp_thrash_penalty
    r0.active_qps = 1
    assert r0._op_penalty() == 1.0


def test_post_to_foreign_rnic_rejected():
    env, cost, fabric, r0, r1 = make_fabric()
    cm, qp = connect(env, fabric, cost)
    with pytest.raises(ValueError):
        r1.post_send(qp, WorkRequest(opcode=Opcode.SEND, length=1))


def test_tenant_qp_quota_blocks_rogue_activation():
    """§2.1: a rogue tenant cannot hoard active QPs past its quota."""
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost,
                           conns_per_peer=4, tenant_active_quota=2)
    picked = []

    def run():
        yield from cm.warm_up("worker1", "rogue")
        for _ in range(4):
            qp = yield from cm.get_connection("worker1", "rogue")
            qp.pending_wrs = 50  # always congested: begs for more QPs
            picked.append(qp)

    env.process(run())
    env.run()
    assert cm.tenant_active_count("rogue") <= 2
    assert cm.quota_denials >= 1


def test_tenant_qp_quota_does_not_affect_other_tenants():
    env, cost, fabric, r0, r1 = make_fabric()
    cm = ConnectionManager(env, fabric, "worker0", cost,
                           conns_per_peer=2, tenant_active_quota=2)

    def run():
        yield from cm.warm_up("worker1", "rogue")
        yield from cm.warm_up("worker1", "polite")
        qp = yield from cm.get_connection("worker1", "rogue")
        qp.pending_wrs = 50
        yield from cm.get_connection("worker1", "rogue")
        yield from cm.get_connection("worker1", "polite")

    env.process(run())
    env.run()
    assert cm.tenant_active_count("polite") == 1


def test_rc_same_qp_messages_arrive_in_order():
    """RC transport: SENDs posted on one QP are delivered in order."""
    env, cost, fabric, r0, r1 = make_fabric()
    p0, p1 = make_pools(env, r0, r1, count=32)
    cm, qp = connect(env, fabric, cost)
    for _ in range(8):
        r1.post_recv("t", p1.get("dne1"), "dne1")

    def sender():
        for i in range(8):
            src = p0.get("dne0")
            src.write("dne0", f"msg{i}", 64)
            r0.post_send(qp, WorkRequest(opcode=Opcode.SEND, buffer=src,
                                         length=64, message=Message(rid=i),
                                         signaled=False))
        yield env.timeout(0)

    env.process(sender())
    env.run()
    seqs = [c.message.rid for c in r1.cq.items if c.is_recv]
    assert seqs == sorted(seqs) == list(range(8))


def test_mtt_thrash_slows_operations():
    """Registering more translations than the MTT cache doubles op cost."""
    times = {}
    for label, cache in (("fits", 10_000), ("thrashes", 1)):
        env, cost, fabric, r0, r1 = make_fabric()
        r0.mrt.mtt_cache_entries = cache
        r1.mrt.mtt_cache_entries = cache
        p0, p1 = make_pools(env, r0, r1)
        # a second large registration overflows the tiny MTT cache
        extra0 = MemoryPool(env, "t", 4096, 2048, name="big0")
        extra1 = MemoryPool(env, "t", 4096, 2048, name="big1")
        r0.register_pool(extra0)
        r1.register_pool(extra1)
        cm, qp = connect(env, fabric, cost)
        r1.post_recv("t", p1.get("dne1"), "dne1")
        src = p0.get("dne0")
        src.write("dne0", "x", 64)
        done = []

        def run():
            t0 = env.now
            yield from r0.execute(qp, WorkRequest(
                opcode=Opcode.SEND, buffer=src, length=64, signaled=False))
            done.append(env.now - t0)

        env.process(run())
        env.run()
        times[label] = done[0]
    assert times["thrashes"] > times["fits"]
