"""Flow-aggregate workload frontend: conservation, scale, failover."""

from hypothesis import given, settings, strategies as st

from repro.workloads import (
    ClientClass,
    FlowAggregateModel,
    build_buckets,
    weighted_percentile,
)


def _classes(clients=2_000, rps=2.0):
    return [
        ClientClass("web", "tenant-a", clients=clients, rps_per_client=rps,
                    zipf_s=0.8),
        ClientClass("iot", "tenant-b", clients=clients // 4,
                    rps_per_client=rps, body_bytes=64, zipf_s=0.8),
    ]


# ---------------------------------------------------------------------------
# client classes and buckets
# ---------------------------------------------------------------------------

def test_buckets_partition_the_client_population():
    classes = _classes(clients=10_000)
    buckets = build_buckets(classes)
    per_class = {}
    for b in buckets:
        per_class[b.tenant] = per_class.get(b.tenant, 0) + b.flows
    assert per_class["tenant-a"] == 10_000
    assert per_class["tenant-b"] == 2_500
    # rates split exactly too
    total = sum(b.rate_rps for b in buckets)
    assert abs(total - sum(c.rate_rps for c in classes)) < 1e-6


def test_zipf_skew_makes_the_head_bucket_heaviest():
    cls = ClientClass("c", "t", clients=1_000, rps_per_client=1.0,
                      zipf_s=1.1)
    buckets = build_buckets([cls])
    rates = [b.rate_rps for b in buckets]
    assert rates[0] == max(rates)
    assert rates[0] > 3 * rates[-1]


def test_weighted_percentile_nearest_rank():
    samples = [(0.0, 10.0, 1), (1.0, 20.0, 1), (2.0, 30.0, 2)]
    assert weighted_percentile(samples, 50.0) == 20.0
    assert weighted_percentile(samples, 99.0) == 30.0
    assert weighted_percentile(samples, 99.0, t0=0.5, t1=1.5) == 20.0
    assert weighted_percentile([], 50.0) == 0.0


# ---------------------------------------------------------------------------
# the fluid model: determinism, conservation, scale
# ---------------------------------------------------------------------------

def test_model_is_deterministic():
    runs = []
    for _ in range(2):
        m = FlowAggregateModel(_classes(), 4, table_capacity=4_096)
        m.run(100_000.0)
        runs.append((m.admitted, m.completed, m.rejected,
                     m.goodput_rps(50_000, 100_000),
                     m.percentile(99, 50_000)))
    assert runs[0] == runs[1]


def test_model_drives_a_million_modeled_clients():
    classes = [
        ClientClass("web", "t-a", clients=600_000, rps_per_client=2.0,
                    zipf_s=0.8),
        ClientClass("mobile", "t-b", clients=300_000, rps_per_client=2.0,
                    zipf_s=0.8),
        ClientClass("iot", "t-c", clients=100_000, rps_per_client=2.0,
                    zipf_s=0.8),
    ]
    m = FlowAggregateModel(classes, 16)
    assert m.modeled_clients == 1_000_000
    assert m.offered_rps == 2_000_000.0
    m.run(100_000.0)
    assert m.conserved()
    assert m.completed > 0
    # the aggregate frontend keeps state tiny: buckets, not clients
    assert len(m.buckets) < 1_000


def test_goodput_scales_with_gateway_count():
    goodputs = []
    for n in (1, 4, 16):
        m = FlowAggregateModel(_classes(clients=200_000), n,
                               table_capacity=32_768)
        m.run(200_000.0)
        goodputs.append(m.goodput_rps(120_000, 200_000))
    assert goodputs == sorted(goodputs)
    assert goodputs[-1] > goodputs[0]


def test_crash_mid_run_keeps_the_ledger_exact():
    m = FlowAggregateModel(_classes(), 4, table_capacity=4_096)
    m.run(50_000.0, drain=False)
    pre = m.goodput_rps(25_000, 50_000)
    m.run(50_000.0, events=[(50_000.0, "crash", "gw1")], drain=True)
    assert m.conserved()
    assert not m.tier.shards["gw1"].healthy
    assert m.flows_synced > 0
    # no lost requests: everything admitted completed or was rejected
    assert m.admitted == m.completed + m.rejected
    assert m.goodput_rps(60_000, 100_000) > 0.5 * pre


def test_crash_and_recover_restores_the_ring():
    m = FlowAggregateModel(_classes(), 4, table_capacity=4_096)
    m.run(120_000.0,
          events=[(40_000.0, "crash", "gw2"),
                  (80_000.0, "recover", "gw2")],
          drain=True)
    assert m.conserved()
    assert m.tier.shards["gw2"].healthy
    assert "gw2" in m.tier.ring


def test_crash_redirects_backlog_instead_of_losing_it():
    # saturate a tiny tier so queues are non-empty at the crash
    m = FlowAggregateModel(_classes(clients=200_000), 2,
                           table_capacity=65_536,
                           fastpath_rps=50_000.0, slowpath_rps=5_000.0)
    m.run(30_000.0, drain=False)
    assert m.inflight() > 0
    m.run(30_000.0, events=[(30_000.0, "crash", "gw0")], drain=True)
    assert m.redirected > 0
    assert m.conserved()
    assert m.admitted == m.completed + m.rejected


def test_total_outage_rejects_rather_than_loses():
    m = FlowAggregateModel(_classes(), 1, table_capacity=4_096)
    m.run(20_000.0, drain=False)
    m.crash_gateway("gw0")
    m.run(20_000.0, drain=True)
    assert m.conserved()
    assert m.admitted == m.completed + m.rejected


def test_tenant_quota_bounds_flow_table_share():
    m = FlowAggregateModel(_classes(clients=20_000), 2,
                           table_capacity=16_384, tenant_quota=4_096)
    m.run(60_000.0)
    for shard in m.tier.shards.values():
        for tenant in ("tenant-a", "tenant-b"):
            assert shard.table.tenant_occupancy(tenant) <= 4_096
    assert m.conserved()


# ---------------------------------------------------------------------------
# hypothesis: exact conservation through crash/recover schedules
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    gateways=st.integers(min_value=1, max_value=6),
    clients=st.integers(min_value=100, max_value=50_000),
    crash_at=st.integers(min_value=5, max_value=45),
    crash_idx=st.integers(min_value=0, max_value=5),
    recover=st.booleans(),
)
def test_property_every_admitted_request_accounted_exactly_once(
        gateways, clients, crash_at, crash_idx, recover):
    """Hypothesis: admitted == completed + rejected (+ 0 lost) after
    drain, through an arbitrary crash (and optional recovery)."""
    classes = [ClientClass("c", "t", clients=clients, rps_per_client=5.0,
                           zipf_s=0.8)]
    m = FlowAggregateModel(classes, gateways, table_capacity=8_192,
                           max_queue=500, max_cold_queue=100)
    events = []
    if gateways > 1:
        victim = f"gw{crash_idx % gateways}"
        events.append((float(crash_at * 1_000), "crash", victim))
        if recover:
            events.append((float((crash_at + 10) * 1_000),
                           "recover", victim))
    m.run(60_000.0, events=events, drain=True)
    assert m.inflight() == 0
    assert m.conserved()
    assert m.admitted == m.completed + m.rejected
    assert m.admitted >= 0 and m.completed >= 0 and m.rejected >= 0
