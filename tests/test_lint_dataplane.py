"""The dataplane lint: no untyped meta plumbing outside repro.dataplane."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from lint_dataplane import check_file, check_tree  # noqa: E402


def _violations(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return check_file(path)


def test_repo_source_tree_is_clean():
    assert check_tree([REPO / "src" / "repro"]) == []


def test_flags_meta_attribute_access(tmp_path):
    vs = _violations(tmp_path, "x = descriptor.meta\n")
    assert len(vs) == 1
    assert ".meta" in vs[0][3]


def test_flags_meta_keyword_argument(tmp_path):
    vs = _violations(tmp_path, "wr = WorkRequest(opcode=1, meta={'dst': 'f'})\n")
    assert len(vs) == 1
    assert "meta=" in vs[0][3]


def test_flags_per_hop_dict_copy(tmp_path):
    vs = _violations(tmp_path, "header = dict(meta)\n")
    assert any("dict(meta)" in v[3] for v in vs)
    vs = _violations(tmp_path, "header = dict(descriptor.meta)\n")
    # both the .meta access and the dict() copy are reported
    assert len(vs) == 2


def test_flags_underscore_key_subscript(tmp_path):
    vs = _violations(tmp_path, "t = meta_dict['_trace']\n")
    assert len(vs) == 1
    assert "'_trace'" in vs[0][3]


def test_flags_underscore_key_get(tmp_path):
    vs = _violations(tmp_path, "ack = d.get('_ack')\n")
    assert len(vs) == 1
    assert "'_ack'" in vs[0][3]
    vs = _violations(tmp_path, "via = d.pop('_via', None)\n")
    assert len(vs) == 1


def test_flags_direct_rc_setup_charge(tmp_path):
    vs = _violations(tmp_path, "yield env.timeout(cost.rc_setup_us)\n")
    assert len(vs) == 1
    assert "rc_setup_us" in vs[0][3]
    assert "RdmaControlPlane" in vs[0][3]


def test_flags_direct_mr_register_charge(tmp_path):
    vs = _violations(
        tmp_path, "yield from cpu.execute(cost.mr_register_time(entries))\n")
    assert len(vs) == 1
    assert "mr_register_time" in vs[0][3]


def test_rdma_package_may_charge_controlplane_costs(tmp_path):
    pkg = tmp_path / "rdma"
    pkg.mkdir()
    path = pkg / "controlplane.py"
    path.write_text("t = cost.rc_setup_us + cost.mr_register_time(4)\n")
    assert check_file(path) == []
    # ...but the meta rules still apply inside repro/rdma
    path.write_text("x = descriptor.meta\n")
    assert len(check_file(path)) == 1


def test_controlplane_rule_applies_inside_dataplane(tmp_path):
    # repro/dataplane is exempt from the meta rules only
    pkg = tmp_path / "dataplane"
    pkg.mkdir()
    path = pkg / "engine.py"
    path.write_text("x = d['_trace']\nt = cost.rc_setup_us\n")
    vs = check_file(path)
    assert len(vs) == 1
    assert "rc_setup_us" in vs[0][3]


def test_flags_direct_spray_call(tmp_path):
    vs = _violations(tmp_path, "q = rss_queue(conn_id, queues)\n")
    assert len(vs) == 1
    assert "rss_queue" in vs[0][3]
    assert "TieredIngress" in vs[0][3]
    vs = _violations(tmp_path, "gw = nic.rss_pick(flow)\n")
    assert len(vs) == 1
    assert "rss_pick" in vs[0][3]


def test_ingress_and_hw_may_spray(tmp_path):
    for part in ("ingress", "hw"):
        pkg = tmp_path / part
        pkg.mkdir()
        path = pkg / "mod.py"
        path.write_text("q = rss_queue(conn_id, queues)\n")
        assert check_file(path) == []


def test_spray_rule_applies_inside_dataplane_and_rdma(tmp_path):
    # the meta/controlplane exemptions do not cover gateway selection
    for part in ("dataplane", "rdma"):
        pkg = tmp_path / part
        pkg.mkdir()
        path = pkg / "engine.py"
        path.write_text("q = rss_queue(conn_id, queues)\n")
        vs = check_file(path)
        assert len(vs) == 1
        assert "rss_queue" in vs[0][3]


def test_spray_definition_and_references_are_legal(tmp_path):
    # only *calls* are flagged; defining or re-exporting the primitive
    # (as repro/hw does) parses as def/Name nodes, not Call nodes
    vs = _violations(
        tmp_path,
        "def rss_queue(flow, queues):\n"
        "    return 0\n"
        "alias = rss_queue\n",
    )
    assert vs == []


def test_cost_definitions_are_legal(tmp_path):
    vs = _violations(
        tmp_path,
        "class CostModel:\n"
        "    rc_setup_us: float = 20_000.0\n"
        "    def mr_register_time(self, mtt_entries):\n"
        "        return 1.0\n",
    )
    assert vs == []


def test_dataplane_package_is_exempt(tmp_path):
    pkg = tmp_path / "dataplane"
    pkg.mkdir()
    path = pkg / "message.py"
    path.write_text("x = d['_trace']\n")
    assert check_file(path) == []


def test_clean_source_passes(tmp_path):
    vs = _violations(
        tmp_path,
        "from repro.dataplane import Message\n"
        "msg = Message(dst='fn')\n"
        "msg.trace = None\n"
        "meta_unrelated = {'key': 1}\n"
        "y = meta_unrelated['key']\n",
    )
    assert vs == []


def test_cli_entrypoint_green_on_repo():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "lint_dataplane.py")],
        capture_output=True, text=True, cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_entrypoint_fails_on_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("x = d['_crossed_domain']\n")
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "lint_dataplane.py"), str(bad)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert "_crossed_domain" in proc.stdout


def test_flags_single_cqe_polling(tmp_path):
    vs = _violations(tmp_path, "completion = yield cq.get()\n")
    assert len(vs) == 1
    assert "poll_batch" in vs[0][3]
    vs = _violations(tmp_path, "completion = yield self.rnic.cq.get()\n")
    assert len(vs) == 1
    assert "cq.get()" in vs[0][3]


def test_batched_and_nonblocking_cq_access_is_legal(tmp_path):
    source = (
        "batch = yield cq.poll_batch()\n"
        "ready = cq.drain_ready(limit=16)\n"
        "maybe = cq.try_get()\n"
        "cq.put_nowait(completion)\n"
    )
    assert _violations(tmp_path, source) == []


def test_rdma_package_may_pull_single_cqes(tmp_path):
    pkg = tmp_path / "rdma"
    pkg.mkdir()
    path = pkg / "qp.py"
    path.write_text("completion = yield cq.get()\n")
    assert check_file(path) == []


def test_non_cq_get_calls_are_legal(tmp_path):
    # only a receiver *named* cq is the completion-queue idiom; plain
    # store/dict gets stay untouched
    source = (
        "item = yield inbox.get()\n"
        "value = mapping.get('key')\n"
    )
    assert _violations(tmp_path, source) == []
