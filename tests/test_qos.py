"""Tests for repro.qos: admission, bounded queues, credits, classes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane import Message
from repro.dne import DwrrScheduler, FcfsScheduler
from repro.qos import (
    AdmissionGate,
    CodelState,
    CreditController,
    CreditError,
    DROP_CODEL,
    DROP_HEAD,
    DROP_TAIL,
    QueueBounds,
    TenantQosPolicy,
    TokenBucket,
)
from repro.sim import Environment


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        TenantQosPolicy("t", qos_class="platinum")
    with pytest.raises(ValueError):
        TenantQosPolicy("t", rate_rps=-1.0)


def test_policy_headroom_orders_classes():
    g = TenantQosPolicy("g", qos_class="guaranteed")
    s = TenantQosPolicy("s", qos_class="standard")
    b = TenantQosPolicy("b", qos_class="best-effort")
    assert g.headroom > s.headroom > b.headroom


# ---------------------------------------------------------------------------
# Token bucket + admission gate
# ---------------------------------------------------------------------------

def test_token_bucket_lazy_refill():
    env = Environment()
    bucket = TokenBucket(rate_rps=1_000_000.0, burst=2,
                        clock=lambda: env.now)  # one token per us
    assert bucket.try_take() and bucket.try_take()
    assert not bucket.try_take()  # burst exhausted
    env.run(until=1.0)
    assert bucket.try_take()      # one us -> one token back
    env.run(until=100.0)
    assert bucket.try_take() and bucket.try_take()
    assert not bucket.try_take()  # refill is capped at the burst


def test_gate_rate_rejection_and_counters():
    env = Environment()
    gate = AdmissionGate(env, {
        "t": TenantQosPolicy("t", rate_rps=1_000_000.0, burst=1),
    })
    assert gate.admit("t") is None
    assert gate.admit("t") == AdmissionGate.REASON_RATE
    assert gate.admitted == 1 and gate.rejected == 1
    assert gate.rejections[("t", AdmissionGate.REASON_RATE)] == 1


def test_gate_deadline_respects_class_headroom():
    env = Environment()
    gate = AdmissionGate(env, {
        "gold": TenantQosPolicy("gold", qos_class="guaranteed",
                                deadline_us=1_000.0),
        "best": TenantQosPolicy("best", qos_class="best-effort",
                                deadline_us=1_000.0),
    })
    # estimate between best's budget (250us) and gold's (2000us):
    # best-effort flinches first, guaranteed is still admitted.
    assert gate.admit("best", estimated_delay_us=500.0) == \
        AdmissionGate.REASON_DEADLINE
    assert gate.admit("gold", estimated_delay_us=500.0) is None


def test_gate_unknown_tenant_always_admitted():
    env = Environment()
    gate = AdmissionGate(env, {})
    assert gate.admit("mystery", estimated_delay_us=1e9) is None


# ---------------------------------------------------------------------------
# Credit controller
# ---------------------------------------------------------------------------

def test_credit_window_shrinks_linearly_with_backlog():
    env = Environment()
    backlog = {"t": 0}
    ctl = CreditController(env, base_credits=64, min_credits=4,
                           low_water=0, high_water=64,
                           backlog_fn=lambda t: backlog[t])
    assert ctl.limit("t") == 64
    backlog["t"] = 32
    assert ctl.limit("t") == 34  # halfway between base and min
    backlog["t"] = 64
    assert ctl.limit("t") == 4
    backlog["t"] = 10_000
    assert ctl.limit("t") == 4   # never below min


def test_credit_release_without_outstanding_raises():
    env = Environment()
    ctl = CreditController(env)
    with pytest.raises(CreditError):
        ctl.release("t")


def test_credit_acquire_blocks_until_release():
    env = Environment()
    ctl = CreditController(env, base_credits=1, min_credits=1)
    order = []

    def sender(name):
        yield from ctl.acquire("t")
        order.append(name)

    env.process(sender("a"))
    env.process(sender("b"))
    env.run(until=1.0)
    assert order == ["a"] and ctl.blocked == 1
    ctl.release("t")
    env.run(until=2.0)
    assert order == ["a", "b"]  # FIFO grant
    assert ctl.outstanding("t") == 1


@given(ops=st.lists(st.sampled_from(["acquire", "release"]), max_size=80))
@settings(max_examples=50, deadline=None)
def test_credits_never_negative(ops):
    env = Environment()
    ctl = CreditController(env, base_credits=4)
    for op in ops:
        if op == "acquire":
            ctl.try_acquire("t")
        else:
            try:
                ctl.release("t")
            except CreditError:
                pass  # releasing with nothing outstanding must raise
        assert ctl.outstanding("t") >= 0
        assert ctl.granted - ctl.released == ctl.outstanding("t")


# ---------------------------------------------------------------------------
# CoDel
# ---------------------------------------------------------------------------

def test_codel_no_drop_below_target():
    state = CodelState(target_us=50.0, interval_us=1_000.0)
    for now in range(0, 100_000, 100):
        assert not state.should_drop(10.0, float(now))


def test_codel_drops_after_sustained_excess():
    state = CodelState(target_us=50.0, interval_us=1_000.0)
    drops = [state.should_drop(200.0, float(now))
             for now in range(0, 10_000, 100)]
    assert not any(drops[:10])   # first interval: no drop yet
    assert any(drops[10:])       # sustained excess eventually drops
    # control law: drop spacing tightens while excess persists
    assert state.count >= 2


# ---------------------------------------------------------------------------
# Bounded schedulers
# ---------------------------------------------------------------------------

def _bounded(sched_cls, capacity, policy, clock=None):
    sched = sched_cls()
    drops = []
    sched.configure_bounds(
        QueueBounds(capacity, policy=policy,
                    codel_target_us=50.0, codel_interval_us=1_000.0),
        on_drop=lambda *args: drops.append(args),
        clock=clock,
    )
    return sched, drops


@pytest.mark.parametrize("sched_cls", [FcfsScheduler, DwrrScheduler])
def test_tail_drop_rejects_incoming_at_capacity(sched_cls):
    sched, drops = _bounded(sched_cls, 2, DROP_TAIL)
    sched.enqueue("t", "m1")
    sched.enqueue("t", "m2")
    sched.enqueue("t", "m3")  # over capacity: shed the newcomer
    assert [d[1] for d in drops] == ["m3"]
    assert drops[0][3] == DROP_TAIL
    assert sched.dropped == 1 and sched.tenant_dropped["t"] == 1
    assert [sched.dequeue()[1] for _ in range(2)] == ["m1", "m2"]


@pytest.mark.parametrize("sched_cls", [FcfsScheduler, DwrrScheduler])
def test_head_drop_evicts_stalest(sched_cls):
    sched, drops = _bounded(sched_cls, 2, DROP_HEAD)
    sched.enqueue("t", "old")
    sched.enqueue("t", "mid")
    sched.enqueue("t", "new")  # over capacity: shed the oldest
    assert [d[1] for d in drops] == ["old"]
    assert [sched.dequeue()[1] for _ in range(2)] == ["mid", "new"]


def test_codel_bounds_require_clock():
    sched = DwrrScheduler()
    with pytest.raises(ValueError):
        sched.configure_bounds(QueueBounds(4, policy=DROP_CODEL))


def test_codel_drops_at_dequeue_without_consuming_deficit():
    now = [0.0]
    sched, drops = _bounded(DwrrScheduler, 64, DROP_CODEL,
                            clock=lambda: now[0])
    for i in range(30):
        sched.enqueue("t", f"m{i}", nbytes=100)
    now[0] = 5_000.0  # all queued items are now 5 ms stale
    served = []
    while True:
        got = sched.dequeue()
        if got is None:
            break
        served.append(got[1])
        now[0] += 500.0  # time passes; sojourn stays above target
    assert drops, "sustained sojourn above target must CoDel-drop"
    assert len(served) + len(drops) == 30


def test_bounds_disabled_is_noop():
    sched = DwrrScheduler()
    for i in range(10_000):
        sched.enqueue("t", i)
    assert sched.pending() == 10_000 and sched.dropped == 0


# ---------------------------------------------------------------------------
# Fairness ledgers
# ---------------------------------------------------------------------------

def test_dwrr_bytes_dequeued_and_fairness_ratio():
    sched = DwrrScheduler(quantum_bytes=1_000)
    sched.set_weight("a", 2.0)
    sched.set_weight("b", 1.0)
    for _ in range(60):
        sched.enqueue("a", "x", nbytes=100)
        sched.enqueue("b", "y", nbytes=100)
    for _ in range(90):
        sched.dequeue()
    a, b = sched.tenant_bytes_dequeued["a"], sched.tenant_bytes_dequeued["b"]
    assert a > b  # weight 2 serves more bytes while both are backlogged
    shares = sched.fairness_shares()
    ratio = sched.fairness_ratio()
    assert ratio == pytest.approx(min(shares.values()) / max(shares.values()))
    assert 0.0 < ratio <= 1.0


def test_fairness_ratio_zero_when_offered_tenant_starved():
    sched = FcfsScheduler()
    sched.enqueue("served", "x")
    sched.enqueue("starved", "y")
    sched.dequeue()
    assert sched.fairness_ratio() == 0.0


# ---------------------------------------------------------------------------
# Property: DWRR weighted byte-fairness holds with bounds + drops
# ---------------------------------------------------------------------------

@given(
    weight=st.sampled_from([2.0, 4.0, 10.0]),
    nbytes=st.integers(min_value=64, max_value=1024),
    burst=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_dwrr_weighted_fairness_survives_drops(weight, nbytes, burst):
    # quantum small relative to capacity * nbytes, so the per-round
    # service quota is set by the weights, not clipped by the bound
    sched = DwrrScheduler(quantum_bytes=64)
    sched.configure_bounds(QueueBounds(16, policy=DROP_TAIL))
    sched.set_weight("heavy", weight)
    sched.set_weight("light", 1.0)
    # keep both tenants saturated (offering above their bound) while
    # serving: the drops at the bound must not skew the served ratio
    for _ in range(16):
        sched.enqueue("heavy", "h", nbytes=nbytes)
        sched.enqueue("light", "l", nbytes=nbytes)
    for _ in range(400):
        for _ in range(burst):
            sched.enqueue("heavy", "h", nbytes=nbytes)
            sched.enqueue("light", "l", nbytes=nbytes)
        got = sched.dequeue()
        assert got is not None
    served = dict(sched.tenant_bytes_dequeued)
    assert served["light"] > 0, "no starvation under bounds"
    ratio = served["heavy"] / served["light"]
    assert ratio == pytest.approx(weight, rel=0.35)
    assert sched.dropped > 0  # the bound was actually exercised


@given(tenants=st.integers(min_value=2, max_value=6))
@settings(max_examples=20, deadline=None)
def test_dwrr_no_starvation_under_bounds(tenants):
    sched = DwrrScheduler(quantum_bytes=512)
    sched.configure_bounds(QueueBounds(8, policy=DROP_TAIL))
    names = [f"t{i}" for i in range(tenants)]
    for name in names:
        for _ in range(20):
            sched.enqueue(name, name, nbytes=256)
    served = set()
    for _ in range(tenants * 8):
        got = sched.dequeue()
        if got is None:
            break
        served.add(got[0])
    assert served == set(names)


# ---------------------------------------------------------------------------
# Property: a full-capacity enqueue never silently loses a Message
# ---------------------------------------------------------------------------

@given(
    policy=st.sampled_from([DROP_TAIL, DROP_HEAD]),
    offered=st.integers(min_value=1, max_value=64),
    capacity=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_enqueue_conserves_owned_messages(policy, offered, capacity):
    """Every owned Message is either served or retired exactly once."""
    agent = "engine"
    sched, _ = _bounded(DwrrScheduler, capacity, policy)
    retired = []
    sched.configure_bounds(
        QueueBounds(capacity, policy=policy),
        on_drop=lambda tenant, item, nbytes, reason:
            (item.retire(agent), retired.append(item)),
    )
    messages = [Message(src="a", dst="b", tenant="t", owner=agent)
                for _ in range(offered)]
    for message in messages:
        sched.enqueue("t", message)
    served = []
    while True:
        got = sched.dequeue()
        if got is None:
            break
        served.append(got[1])
    assert len(served) + len(retired) == offered
    assert len(set(map(id, served)) | set(map(id, retired))) == offered
    for message in retired:  # retire() already happened, exactly once
        with pytest.raises(Exception):
            message.retire(agent)
    for message in served:   # survivors are still live and owned
        message.retire(agent)
