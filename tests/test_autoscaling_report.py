"""Tests for the function autoscaler and the report persistence module."""

import pytest

from repro.experiments import ExperimentResult, from_json, load, save, to_csv, to_json
from repro.platform import ElasticPlatform, FunctionAutoscaler, FunctionSpec, Tenant
from repro.sim import Environment


# ---------------------------------------------------------------------------
# FunctionAutoscaler
# ---------------------------------------------------------------------------

def scaled_setup(min_replicas=1, max_replicas=4, work_us=400.0,
                 concurrency=1):
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1", pool_buffers=2048))
    caller = plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")
    spec = FunctionSpec("svc", "t1", work_us=work_us, concurrency=concurrency)
    plat.deploy_service(spec, "worker1", replicas=min_replicas)
    scaler = FunctionAutoscaler(plat, spec, nodes=["worker1", "worker0"],
                                min_replicas=min_replicas,
                                max_replicas=max_replicas,
                                high_watermark=2.0, low_watermark=0.2,
                                period_us=10_000.0)
    plat.start()
    scaler.start()
    return env, plat, caller, scaler


def test_autoscaler_validation():
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1"))
    spec = FunctionSpec("svc", "t1")
    plat.deploy_service(spec, "worker0")
    with pytest.raises(ValueError):
        FunctionAutoscaler(plat, spec, ["worker0"], min_replicas=0)
    with pytest.raises(ValueError):
        FunctionAutoscaler(plat, spec, ["worker0"], high_watermark=1.0,
                           low_watermark=2.0)


def test_autoscaler_scales_out_under_backlog():
    env, plat, caller, scaler = scaled_setup()

    def client(i):
        yield env.timeout(30_000)
        for _ in range(10):
            yield from caller.invoke("svc", "x", 64)

    for i in range(12):  # 12 concurrent closed loops on a slow service
        env.process(client(i))
    env.run(until=700_000)
    assert scaler.scale_outs >= 1
    # the replica count peaked above 1 while the burst was in flight
    assert max(v for _t, v in scaler.replica_series) > 1


def test_autoscaler_scales_back_when_idle():
    env, plat, caller, scaler = scaled_setup()

    def burst():
        yield env.timeout(30_000)
        procs = []

        def one():
            for _ in range(6):
                yield from caller.invoke("svc", "x", 64)

        for _ in range(12):
            procs.append(env.process(one()))
        for proc in procs:
            yield proc
        # burst over: long idle period follows

    env.process(burst())
    env.run(until=2_000_000)
    assert scaler.scale_ins >= 1
    assert plat.replica_count("svc") == scaler.min_replicas


def test_autoscaler_respects_max():
    env, plat, caller, scaler = scaled_setup(max_replicas=2)

    def client(i):
        yield env.timeout(30_000)
        for _ in range(20):
            yield from caller.invoke("svc", "x", 64)

    for i in range(16):
        env.process(client(i))
    env.run(until=800_000)
    assert plat.replica_count("svc") <= 2


def test_autoscaler_double_start_rejected():
    env, plat, caller, scaler = scaled_setup()
    with pytest.raises(RuntimeError):
        scaler.start()


def test_autoscaler_records_series():
    env, plat, caller, scaler = scaled_setup()
    env.run(until=100_000)
    assert len(scaler.replica_series) >= 5


# ---------------------------------------------------------------------------
# report persistence
# ---------------------------------------------------------------------------

def sample_result():
    result = ExperimentResult("demo exp", columns=["name", "value"])
    result.add_row("a", 1.5)
    result.add_row("b", 2)
    result.add_series("ts", [(0.0, 1.0), (1.0, 2.0)])
    result.note("a note")
    return result


def test_json_round_trip():
    original = sample_result()
    restored = from_json(to_json(original))
    assert restored.name == original.name
    assert restored.columns == original.columns
    assert restored.rows == original.rows
    assert restored.series["ts"] == [(0.0, 1.0), (1.0, 2.0)]
    assert restored.notes == original.notes


def test_json_version_check():
    import json
    bad = json.dumps({"version": 99, "name": "x", "columns": [], "rows": []})
    with pytest.raises(ValueError):
        from_json(bad)


def test_csv_export():
    text = to_csv(sample_result())
    lines = text.strip().splitlines()
    assert lines[0] == "name,value"
    assert lines[1] == "a,1.5"


def test_save_and_load(tmp_path):
    original = sample_result()
    json_path = save(original, tmp_path)
    assert json_path.exists()
    assert (tmp_path / "demo_exp.csv").exists()
    restored = load(json_path)
    assert restored.rows == original.rows


def test_save_custom_stem(tmp_path):
    path = save(sample_result(), tmp_path, stem="custom")
    assert path.name == "custom.json"
