"""Unit tests for ingress internals: adapters, proxy pieces, workers."""

import pytest

from repro.config import CostModel
from repro.ingress import ClientConnection, GatewayStats, TcpWorkerAdapter
from repro.ingress.gateway import GatewayWorker, rss_pick
from repro.net import HttpRequest
from repro.platform import FunctionSpec, ServerlessPlatform, Tenant
from repro.sim import Environment


def adapter_setup(stack_kind=TcpWorkerAdapter.FSTACK):
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("t1"))
    plat.deploy(FunctionSpec("svc", "t1", work_us=3), "worker0")
    adapter = TcpWorkerAdapter(env, plat.runtimes["worker0"], plat.cost,
                               stack_kind=stack_kind)
    adapter.start()
    plat.start()
    return env, plat, adapter


@pytest.mark.parametrize("stack_kind",
                         [TcpWorkerAdapter.FSTACK, TcpWorkerAdapter.KERNEL])
def test_adapter_request_response_cycle(stack_kind):
    env, plat, adapter = adapter_setup(stack_kind)
    got = []

    def complete(ctx, body, length):
        got.append((ctx, body, length))
        yield env.timeout(0)

    request = HttpRequest("/svc", body="hello", body_bytes=64)
    adapter.deliver_request(request, "t1", "svc", "CTX", complete)
    env.run(until=100_000)
    assert got and got[0][0] == "CTX"
    assert got[0][1] == "hello"  # echo handler round-trips the body
    assert adapter.requests == 1
    assert adapter.responses == 1


def test_adapter_registered_as_local_endpoint():
    env, plat, adapter = adapter_setup()
    runtime = plat.runtimes["worker0"]
    assert runtime.intra_routes.is_local(adapter.adapter_id)
    # infrastructure endpoint: trusted across tenants
    assert not runtime.crosses_security_domain("t1", adapter.adapter_id)


def test_adapter_recycles_buffers():
    env, plat, adapter = adapter_setup()

    def complete(ctx, body, length):
        yield env.timeout(0)

    for i in range(5):
        adapter.deliver_request(HttpRequest("/svc", body=f"r{i}",
                                            body_bytes=64),
                                "t1", "svc", i, complete)
    env.run(until=200_000)
    pool = plat.pool_for("t1", "worker0")
    assert pool.free_count == pool.buffer_count - plat.recv_buffers


def test_adapter_double_start_is_noop():
    env, plat, adapter = adapter_setup()
    adapter.start()  # idempotent
    env.run(until=1000)


# ---------------------------------------------------------------------------
# gateway pieces
# ---------------------------------------------------------------------------

def test_client_connection_ids_unique():
    env = Environment()
    a = ClientConnection(env)
    b = ClientConnection(env)
    assert a.conn_id != b.conn_id
    assert a.open and b.open


def test_gateway_stats_initial():
    stats = GatewayStats()
    assert stats.accepted == stats.completed == stats.dropped == 0


def test_rss_pick_requires_workers():
    with pytest.raises(RuntimeError):
        rss_pick([], 1)


def test_rss_pick_stable_per_connection():
    env = Environment()

    class _Core:
        class tracker:
            useful = 0.0

    workers = [GatewayWorker(env, i, _Core()) for i in range(4)]
    assert rss_pick(workers, 7) is rss_pick(workers, 7)


def test_worker_pause_extends_not_shrinks():
    env = Environment()

    class _Core:
        class tracker:
            useful = 0.0

    worker = GatewayWorker(env, 0, _Core())
    worker.pause(1000)
    worker.pause(500)  # shorter pause must not shorten the window
    assert worker._pause_until == 1000
