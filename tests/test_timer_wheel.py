"""The coalescing timer wheel: bucket ticks, tombstones, opt-in wiring."""

from repro.platform import FunctionSpec, ServerlessPlatform
from repro.platform.function import InvokeTimeout
from repro.platform.tenant import Tenant
from repro.sim import Environment, TimerWheel


# ---------------------------------------------------------------------------
# wheel semantics
# ---------------------------------------------------------------------------

def test_fires_at_next_bucket_edge():
    env = Environment()
    wheel = TimerWheel(env, granularity_us=10.0)
    fired = []
    wheel.schedule(12.0, lambda: fired.append(env.now))
    env.run()
    # deadline 12 -> bucket edge 20 (never early, at most one bucket late)
    assert fired == [20.0]


def test_exact_edge_is_not_delayed():
    env = Environment()
    wheel = TimerWheel(env, granularity_us=10.0)
    fired = []
    wheel.schedule(30.0, lambda: fired.append(env.now))
    env.run()
    assert fired == [30.0]


def test_bucket_coalescing_one_kernel_event_per_bucket():
    env = Environment()
    wheel = TimerWheel(env, granularity_us=32.0)
    fired = []
    for i in range(50):  # all land in the same bucket
        wheel.schedule(10.0 + i * 0.1, lambda i=i: fired.append(i))
    env.run()
    assert sorted(fired) == list(range(50))
    assert wheel.ticks == 1
    # one shared tick: exactly one timer event reached the heap
    assert env.events_processed == 1


def test_cancel_is_a_tombstone():
    env = Environment()
    wheel = TimerWheel(env, granularity_us=8.0)
    fired = []
    handles = [wheel.schedule(20.0, lambda i=i: fired.append(i))
               for i in range(10)]
    for handle in handles[1:]:
        wheel.cancel(handle)
    wheel.cancel(handles[1])  # idempotent
    assert wheel.pending == 1
    env.run()
    assert fired == [0]
    assert wheel.cancelled == 9
    assert wheel.fired == 1
    assert wheel.ticks == 1  # the bucket still costs its single tick


def test_sleep_coalesces_sleepers():
    env = Environment()
    wheel = TimerWheel(env, granularity_us=16.0)
    woke = []

    def sleeper(tag, delay):
        yield wheel.sleep(delay)
        woke.append((env.now, tag))

    env.process(sleeper("a", 3.0), name="a")
    env.process(sleeper("b", 15.0), name="b")
    env.run()
    assert woke == [(16.0, "a"), (16.0, "b")]


def test_periodic_ticks_until_stopped():
    env = Environment()
    wheel = TimerWheel(env, granularity_us=5.0)
    ticks = []
    timer = wheel.periodic(25.0, lambda: ticks.append(env.now))

    def stopper():
        yield env.timeout(80.0)
        timer.stop()

    env.process(stopper(), name="stop")
    env.run()
    assert ticks == [25.0, 50.0, 75.0]


def test_validation():
    env = Environment()
    try:
        TimerWheel(env, granularity_us=0.0)
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("zero granularity accepted")
    wheel = TimerWheel(env)
    try:
        wheel.schedule(-1.0, lambda: None)
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("negative delay accepted")


# ---------------------------------------------------------------------------
# opt-in wiring: node guard timers through the wheel
# ---------------------------------------------------------------------------

def _platform():
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("t1"))
    return env, plat


def _drive(env, body, until=500_000, warmup=40_000):
    def driver():
        yield env.timeout(warmup)  # RC warm-up
        yield from body()

    env.process(driver())
    env.run(until=until)


def test_wheel_backed_invoke_deadline_still_times_out():
    env, plat = _platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker1")
    runtime = plat.runtimes["worker0"]
    runtime.invoke_timeout_us = 10_000.0
    wheel = runtime.enable_timer_wheel(granularity_us=64.0)
    assert runtime.enable_timer_wheel() is wheel  # idempotent
    plat.start()
    caught = []

    def body():
        plat.crash_node("worker1", recovery=False)
        try:
            yield from client.invoke("server", "ping", 64)
        except InvokeTimeout:
            caught.append(env.now)

    _drive(env, body)
    assert len(caught) == 1
    assert client.invoke_timeouts == 1
    assert wheel.fired >= 1  # the deadline came off the wheel


def test_wheel_guard_is_cancelled_when_the_reply_wins():
    env, plat = _platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker1")
    runtime = plat.runtimes["worker0"]
    runtime.invoke_timeout_us = 50_000.0
    wheel = runtime.enable_timer_wheel(granularity_us=64.0)
    plat.start()
    replies = []

    def body():
        reply = yield from client.invoke("server", "ping", 64)
        replies.append(reply.payload)

    _drive(env, body)
    assert len(replies) == 1
    assert client.invoke_timeouts == 0
    # the guard never fired: the reply tombstoned it
    assert wheel.cancelled >= 1
    assert wheel.fired == 0


def test_wheel_backed_reliable_send_acks_cancel_the_guard():
    env, plat = _platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker1")
    runtime = plat.runtimes["worker0"]
    wheel = runtime.enable_timer_wheel(granularity_us=64.0)
    plat.start()

    from repro.dataplane import Message

    def body():
        yield from client.iolib.send("fn:client", "server", "ping", 64,
                                     Message(tenant="t1"),
                                     timeout_us=20_000.0)

    _drive(env, body)
    assert client.iolib.send_failures == 0
    assert client.iolib.retransmissions == 0
    assert plat.functions["server"].handled == 1
    assert wheel.cancelled >= 1
    assert wheel.fired == 0
