"""Deeper integration and failure-injection tests across subsystems."""

import pytest

from repro.baselines import build_fuyao
from repro.config import CostModel
from repro.dne import DwrrScheduler
from repro.hw import SocDmaEngine, build_cluster
from repro.platform import FunctionSpec, ServerlessPlatform, Tenant
from repro.rdma import ConnectionManager, RdmaFabric
from repro.sim import Environment
from repro.workloads import DirectDriver, deploy_echo_pair


# ---------------------------------------------------------------------------
# SoC DMA engine
# ---------------------------------------------------------------------------

def test_soc_dma_service_time():
    env = Environment()
    cost = CostModel()
    dma = SocDmaEngine(env, cost)
    done = []

    def proc():
        yield from dma.transfer(3500)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done[0] == pytest.approx(cost.soc_dma_base_us + 1.0)
    assert dma.transfers == 1
    assert dma.bytes_moved == 3500


def test_soc_dma_serializes_transfers():
    env = Environment()
    cost = CostModel()
    dma = SocDmaEngine(env, cost)
    done = []

    def proc(i):
        yield from dma.transfer(0)
        done.append(env.now)

    for i in range(3):
        env.process(proc(i))
    env.run()
    assert done == pytest.approx(
        [cost.soc_dma_base_us * (i + 1) for i in range(3)]
    )


def test_soc_dma_rejects_negative():
    env = Environment()
    dma = SocDmaEngine(env, CostModel())
    with pytest.raises(ValueError):
        next(dma.transfer(-1))


def test_soc_dma_utilization():
    env = Environment()
    cost = CostModel()
    dma = SocDmaEngine(env, cost)

    def proc():
        yield from dma.transfer(3500)  # ~3.2 us

    env.process(proc())
    env.run(until=6.4)
    assert dma.utilization() == pytest.approx(0.5, abs=0.05)


# ---------------------------------------------------------------------------
# Connection manager congestion path
# ---------------------------------------------------------------------------

def test_congested_qp_triggers_shadow_activation():
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    fabric.install_rnic("worker0")
    fabric.install_rnic("worker1")
    cm = ConnectionManager(env, fabric, "worker0", cost, conns_per_peer=3)
    picked = []

    def run():
        yield from cm.warm_up("worker1", "t")
        first = yield from cm.get_connection("worker1", "t")
        first.pending_wrs = 20  # heavily loaded
        second = yield from cm.get_connection("worker1", "t")
        picked.append((first, second))

    env.process(run())
    env.run()
    first, second = picked[0]
    assert second is not first  # a shadow QP was activated instead
    assert cm.active_count() == 2


# ---------------------------------------------------------------------------
# FUYAO cold-copy configuration
# ---------------------------------------------------------------------------

def test_fuyao_cold_copies_slow_it_down():
    def run(cached):
        env = Environment()
        plat = ServerlessPlatform(env, engine_builder=build_fuyao)
        plat.add_tenant(Tenant("t1"))
        client = plat.deploy(FunctionSpec("c", "t1", work_us=0), "worker0")
        plat.deploy(FunctionSpec("s", "t1", work_us=0), "worker1")
        for engine in plat.engines.values():
            engine.copy_cached = cached
        plat.start()
        latencies = []

        def body():
            yield env.timeout(60_000)
            for _ in range(5):
                t0 = env.now
                yield from client.invoke("s", "x" * 8, 4096)
                latencies.append(env.now - t0)

        env.process(body())
        env.run(until=600_000)
        return sum(latencies) / len(latencies)

    assert run(cached=False) > run(cached=True)


# ---------------------------------------------------------------------------
# DWRR at the engine: two tenants through one DNE
# ---------------------------------------------------------------------------

def test_engine_dwrr_prefers_heavy_tenant():
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("gold", weight=4.0, pool_buffers=1024))
    plat.add_tenant(Tenant("bronze", weight=1.0, pool_buffers=1024))
    gold_client, gold_server = deploy_echo_pair(plat, tenant="gold",
                                                suffix="-g")
    bronze_client, bronze_server = deploy_echo_pair(plat, tenant="bronze",
                                                    suffix="-b")
    plat.start()
    drivers = []
    for i in range(24):
        drivers.append(DirectDriver(env, gold_client, gold_server,
                                    size=256, name=f"g{i}"))
        drivers.append(DirectDriver(env, bronze_client, bronze_server,
                                    size=256, name=f"b{i}"))

    def kickoff():
        yield env.timeout(40_000)
        for driver in drivers:
            env.process(driver.run())

    env.process(kickoff())
    env.run(until=180_000)
    engine = plat.engines["worker0"]
    gold = engine.stats.tenant_meter("gold").count
    bronze = engine.stats.tenant_meter("bronze").count
    assert gold > 0 and bronze > 0
    # under saturation the 4:1 weights shape the split
    assert gold / bronze == pytest.approx(4.0, rel=0.35)


# ---------------------------------------------------------------------------
# Function termination churn with in-flight traffic
# ---------------------------------------------------------------------------

def test_terminated_function_traffic_is_dropped_cleanly():
    """A scale-down race drops the message at the engine — the loop
    survives, the buffer is recycled, and a drop is counted."""
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("t1"))
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("victim", "t1", work_us=10), "worker1")
    plat.start()
    completed = []

    def body():
        yield env.timeout(40_000)
        reply = yield from client.invoke("victim", "a", 64)
        completed.append(reply.payload)
        # control plane withdraws the victim's routes mid-flight
        plat.coordinator.function_terminated("victim")
        env.process(client.invoke("victim", "b", 64))  # will never answer

    env.process(body())
    env.run(until=400_000)
    assert completed == ["a"]
    engine = plat.engines["worker0"]
    assert engine.stats.dropped == 1
    # engine loop is alive: a healthy request still flows afterwards
    pool = plat.pool_for("t1", "worker0")
    assert pool.free_count == pool.buffer_count - plat.recv_buffers


def test_redeploy_after_termination():
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("t1"))
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("svc", "t1", work_us=0), "worker1")
    plat.start()
    out = []

    def body():
        yield env.timeout(40_000)
        reply = yield from client.invoke("svc", "one", 64)
        out.append(reply.payload)
        plat.coordinator.function_terminated("svc")
        plat.functions.pop("svc")
        # redeploy on the other node; coordinator republishes routes
        plat.deploy(FunctionSpec("svc", "t1", work_us=0), "worker0")
        yield env.timeout(1000)
        reply = yield from client.invoke("svc", "two", 64)
        out.append(reply.payload)

    env.process(body())
    env.run(until=600_000)
    assert out == ["one", "two"]


# ---------------------------------------------------------------------------
# Pool backpressure: senders block on exhausted pools and recover
# ---------------------------------------------------------------------------

def test_pool_backpressure_recovers():
    env = Environment()
    plat = ServerlessPlatform(env, recv_buffers=4)
    # pool barely larger than the SRQ posting: senders must wait for
    # recycling instead of crashing
    plat.add_tenant(Tenant("t1", pool_buffers=8))
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker1")
    plat.start()
    done = []

    def one(i):
        yield from client.invoke("server", f"m{i}", 64)
        done.append(i)

    def body():
        yield env.timeout(40_000)
        procs = [env.process(one(i)) for i in range(16)]
        for proc in procs:
            yield proc

    env.process(body())
    env.run(until=2_000_000)
    assert sorted(done) == list(range(16))


# ---------------------------------------------------------------------------
# Determinism of a full platform run
# ---------------------------------------------------------------------------

def test_full_platform_run_is_deterministic():
    def run_once():
        env = Environment()
        plat = ServerlessPlatform(env)
        client, server = deploy_echo_pair(plat)
        plat.start()
        driver = DirectDriver(env, client, server, size=512)

        def kickoff():
            yield env.timeout(40_000)
            yield from driver.run(max_requests=25)

        env.process(kickoff())
        env.run(until=500_000)
        return tuple(driver.latency.samples)

    assert run_once() == run_once()
