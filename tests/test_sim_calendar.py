"""Scheduler equivalence: the calendar queue IS the heap, bit for bit.

The calendar queue (``repro.sim.CalendarQueue``) may only ship if it
is *indistinguishable* from the flat heap: same pop order for every
entry stream, including same-timestamp FIFO ties (the eid tie-break)
and timers that fire with nobody listening (cancelled guards).  These
properties back the byte-identical seed gates that CI runs under
``REPRO_SIM_SCHEDULER=calendar``.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AnyOf, CalendarQueue, Environment


# -- queue-level equivalence ------------------------------------------------

# (time, priority) pools deliberately tiny so same-timestamp ties and
# same-bucket collisions dominate the generated streams.
_times = st.floats(min_value=0.0, max_value=200.0, allow_nan=False,
                   allow_infinity=False)
_tie_times = st.sampled_from([0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 31.9, 32.0,
                              32.1, 64.0, 100.0])
_priorities = st.sampled_from([0, 1])


def _entries(times):
    # eid mirrors the kernel's monotone counter: it makes every tuple
    # unique, so comparison never reaches the (uncomparable) payload.
    return st.lists(st.tuples(times, _priorities), max_size=200).map(
        lambda pairs: [(t, p, eid, object()) for eid, (t, p)
                       in enumerate(pairs)])


def _drain_heap(entries):
    heap = []
    for entry in entries:
        heapq.heappush(heap, entry)
    return [heapq.heappop(heap) for _ in range(len(heap))]


def _drain_calendar(entries, bucket_us):
    cal = CalendarQueue(bucket_us=bucket_us)
    for entry in entries:
        cal.push(entry)
    return [cal.pop() for _ in range(len(cal))]


@given(_entries(_times), st.sampled_from([0.5, 8.0, 32.0, 1000.0]))
@settings(max_examples=200, deadline=None)
def test_calendar_pops_in_exact_heap_order(entries, bucket_us):
    assert _drain_calendar(entries, bucket_us) == _drain_heap(entries)


@given(_entries(_tie_times))
@settings(max_examples=200, deadline=None)
def test_same_timestamp_ties_resolve_identically(entries):
    # Heavy tie pool: correctness rides entirely on the eid FIFO
    # tie-break surviving the bucket structure.
    assert _drain_calendar(entries, 32.0) == _drain_heap(entries)


@given(_entries(_times))
@settings(max_examples=100, deadline=None)
def test_interleaved_push_pop_matches_heap(entries):
    heap, cal = [], CalendarQueue(bucket_us=32.0)
    out_heap, out_cal = [], []
    for i, entry in enumerate(entries):
        heapq.heappush(heap, entry)
        cal.push(entry)
        if i % 3 == 2:  # pop every third push, mid-stream
            out_heap.append(heapq.heappop(heap))
            out_cal.append(cal.pop())
    out_heap.extend(heapq.heappop(heap) for _ in range(len(heap)))
    out_cal.extend(cal.pop() for _ in range(len(cal)))
    assert out_cal == out_heap


def test_peek_and_len():
    cal = CalendarQueue(bucket_us=10.0)
    assert len(cal) == 0 and not cal
    assert cal.peek() == float("inf")
    cal.push((25.0, 1, 0, "a"))
    cal.push((5.0, 1, 1, "b"))
    assert cal.peek() == 5.0
    assert len(cal) == 2 and cal
    assert cal.pop()[3] == "b"
    assert cal.peek() == 25.0


# -- environment-level equivalence ------------------------------------------

def _workload(env: Environment, delays, log):
    """A process mixing timers, ties, and abandoned (lost-race) guards."""

    def sleeper(tag, delay):
        yield env.timeout(delay)
        log.append((env.now, tag))

    def racer(tag, fast, slow):
        # The slow timeout loses the race and fires later with no
        # consumer — the kernel-level shape of a cancelled guard.
        winner = env.timeout(fast)
        loser = env.timeout(slow)
        yield AnyOf(env, [winner, loser])
        log.append((env.now, tag, "won"))

    for i, delay in enumerate(delays):
        env.process(sleeper(f"s{i}", delay), name=f"s{i}")
        env.process(racer(f"r{i}", delay, delay + 0.25), name=f"r{i}")


@given(st.lists(st.sampled_from([0.0, 1.0, 1.0, 7.5, 31.9, 32.0, 33.0,
                                 64.0, 64.0, 97.1]),
                min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_environment_trace_identical_across_schedulers(delays):
    logs = {}
    for scheduler in ("heap", "calendar"):
        env = Environment(scheduler=scheduler, bucket_us=32.0)
        log = []
        _workload(env, delays, log)
        env.run()
        logs[scheduler] = (log, env.events_processed, env.now)
    assert logs["heap"] == logs["calendar"]


def test_environment_scheduler_validation():
    try:
        Environment(scheduler="fifo")
    except ValueError as exc:
        assert "fifo" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("bad scheduler name accepted")
