"""Tests for the descriptor channels and routing tables (repro.dne)."""

import pytest

from repro.config import CostModel
from repro.dne import ComchE, ComchP, InterNodeRoutes, IntraNodeRoutes, RouteError, SkMsgChannel, TcpChannel
from repro.hw import build_cluster
from repro.memory import Buffer, BufferDescriptor
from repro.sim import Environment, Store


def make_channel(cls):
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    channel = cls(env, cost)
    return env, cost, cluster, channel


def descriptor():
    buf = Buffer(64)
    buf.owner = "fn:a"
    return BufferDescriptor(buffer=buf, length=16)


# ---------------------------------------------------------------------------
# channel mechanics
# ---------------------------------------------------------------------------

def test_attach_is_idempotent():
    env, cost, cluster, channel = make_channel(ComchE)
    a = channel.attach("fn1")
    b = channel.attach("fn1")
    assert a is b


def test_attach_with_shared_inbox():
    env, cost, cluster, channel = make_channel(ComchE)
    inbox = Store(env)
    endpoint = channel.attach("fn1", inbox)
    assert endpoint.inbox is inbox


def test_function_send_requires_attach():
    env, cost, cluster, channel = make_channel(ComchE)
    cpu = cluster.node("worker0").cpu
    with pytest.raises(KeyError):
        next(channel.function_send(cpu, "ghost", descriptor()))


def test_dne_send_requires_attach():
    env, cost, cluster, channel = make_channel(ComchE)
    with pytest.raises(KeyError):
        channel.dne_send("ghost", descriptor())


def test_detach_disconnects_tenant():
    env, cost, cluster, channel = make_channel(ComchE)
    channel.attach("fn1")
    channel.detach("fn1")
    with pytest.raises(KeyError):
        channel.dne_send("fn1", descriptor())


def test_round_trip_latency_is_two_oneways():
    env, cost, cluster, channel = make_channel(ComchE)
    cpu = cluster.node("worker0").cpu
    endpoint = channel.attach("fn1")
    times = {}

    def fn():
        t0 = env.now
        yield from channel.function_send(cpu, "fn1", descriptor())
        reply = yield endpoint.recv()
        times["rtt"] = env.now - t0

    def dne():
        fn_id, desc = yield channel.server_inbox.get()
        channel.dne_send(fn_id, desc)

    env.process(fn())
    env.process(dne())
    env.run()
    assert times["rtt"] >= 2 * channel.oneway_us


def test_channel_counters():
    env, cost, cluster, channel = make_channel(ComchE)
    cpu = cluster.node("worker0").cpu
    endpoint = channel.attach("fn1")

    def fn():
        yield from channel.function_send(cpu, "fn1", descriptor())

    env.process(fn())
    env.run()
    assert channel.to_dne_count == 1


# ---------------------------------------------------------------------------
# variant characteristics (the Fig. 9 trade-offs)
# ---------------------------------------------------------------------------

def test_latency_ordering_p_fastest_tcp_slowest():
    cost = CostModel()
    env = Environment()
    p = ComchP(env, cost)
    e = ComchE(env, cost)
    tcp = TcpChannel(env, cost)
    assert p.oneway_us < e.oneway_us < tcp.oneway_us


def test_comch_p_within_budget_is_fast():
    env, cost, cluster, channel = make_channel(ComchP)
    for i in range(cost.comch_p_core_budget):
        channel.attach(f"fn{i}")
    assert channel._delivery_delay() == channel.oneway_us
    assert channel.dedicated_cores == cost.comch_p_core_budget


def test_comch_p_oversubscription_penalty():
    """Beyond the DPU core budget, Comch-P delivery collapses (Fig. 9)."""
    env, cost, cluster, channel = make_channel(ComchP)
    for i in range(cost.comch_p_core_budget + 2):
        channel.attach(f"fn{i}")
    assert channel._delivery_delay() > channel.oneway_us + cost.comch_p_oneway_us


def test_comch_e_scales_without_penalty():
    env, cost, cluster, channel = make_channel(ComchE)
    for i in range(20):
        channel.attach(f"fn{i}")
    assert channel._delivery_delay() == channel.oneway_us


def test_skmsg_channel_is_local():
    env, cost, cluster, channel = make_channel(SkMsgChannel)
    assert channel.oneway_us < 1.0
    assert channel.ingest_cost_us() == 0.0  # charged by the CNE itself


# ---------------------------------------------------------------------------
# routing tables
# ---------------------------------------------------------------------------

def test_intra_routes_add_remove():
    routes = IntraNodeRoutes("worker0")
    routes.add_function("fn1")
    assert routes.is_local("fn1")
    assert routes.socket_for("fn1") == "fn1"
    routes.remove_function("fn1")
    assert not routes.is_local("fn1")
    with pytest.raises(RouteError):
        routes.socket_for("fn1")


def test_intra_routes_version_bumps():
    routes = IntraNodeRoutes("worker0")
    v0 = routes.version
    routes.add_function("fn1")
    assert routes.version == v0 + 1
    routes.remove_function("missing")  # no-op
    assert routes.version == v0 + 1


def test_inter_routes_lookup():
    routes = InterNodeRoutes("worker0")
    routes.set_route("fn1", "worker1")
    assert routes.node_for("fn1") == "worker1"
    assert routes.has_route("fn1")
    routes.remove_route("fn1")
    with pytest.raises(RouteError):
        routes.node_for("fn1")


def test_inter_routes_snapshot_is_copy():
    routes = InterNodeRoutes("worker0")
    routes.set_route("fn1", "worker1")
    snapshot = routes.routes
    snapshot["fn1"] = "tampered"
    assert routes.node_for("fn1") == "worker1"
