"""Focused tests for engine event handling, stats, and edge paths."""

import pytest

from repro.baselines import build_cne, build_dne
from repro.config import CostModel, cost_model_overrides
from repro.platform import FunctionSpec, ServerlessPlatform, Tenant
from repro.sim import Environment
from repro.workloads import DirectDriver, deploy_echo_pair


def echo_platform(builder=build_dne, **plat_kwargs):
    env = Environment()
    plat = ServerlessPlatform(env, engine_builder=builder, **plat_kwargs)
    client, server = deploy_echo_pair(plat)
    plat.start()
    return env, plat, client, server


def run_driver(env, client, server, n=10, until=400_000):
    driver = DirectDriver(env, client, server, size=256)

    def kickoff():
        yield env.timeout(40_000)
        yield from driver.run(max_requests=n)

    env.process(kickoff())
    env.run(until=until)
    return driver


def test_unknown_event_kind_rejected():
    env, plat, client, server = echo_platform()
    engine = plat.engines["worker0"]
    engine.inject_event("martian", {})
    with pytest.raises(ValueError, match="unknown engine event"):
        env.run(until=10_000)


def test_engine_byte_counters():
    env, plat, client, server = echo_platform()
    driver = run_driver(env, client, server, n=10)
    assert driver.completed == 10
    engine = plat.engines["worker0"]
    assert engine.stats.tx_bytes == 10 * 256
    assert engine.stats.rx_bytes == 10 * 256


def test_engine_no_drops_in_steady_state():
    env, plat, client, server = echo_platform()
    run_driver(env, client, server, n=20)
    for engine in plat.engines.values():
        assert engine.stats.dropped == 0


def test_engine_stop_halts_processing():
    env, plat, client, server = echo_platform()
    driver = DirectDriver(env, client, server, size=64)

    def kickoff():
        yield env.timeout(40_000)
        plat.engines["worker0"].stop()
        env.process(driver.run(max_requests=1))

    env.process(kickoff())
    env.run(until=200_000)
    assert driver.completed == 0  # engine down: nothing flows


def test_engine_cpu_pct_pinned_vs_scheduled():
    env, plat, client, server = echo_platform()
    run_driver(env, client, server, n=5)
    engine = plat.engines["worker0"]
    # DNE is pinned: reports full occupancy regardless of load
    assert engine.engine_cpu_pct(0.0) == 100.0
    assert engine.busy_us > 0


def test_cne_interrupt_penalty_grows_with_backlog():
    env, plat, client, server = echo_platform(builder=build_cne)
    engine = plat.engines["worker0"]
    base = engine._ingest_cost_us()
    for i in range(200):
        engine.scheduler.enqueue("echo", ("x", None), nbytes=64)
    loaded = engine._ingest_cost_us()
    assert loaded > base


def test_replenish_period_configurable():
    env, plat, client, server = echo_platform()
    assert plat.engines["worker0"].replenish_period_us == 50.0


def test_cost_override_slows_engine():
    slow = cost_model_overrides(dne_tx_proc_us=5.0, dne_rx_proc_us=5.0)
    times = {}
    for label, cost in (("fast", None), ("slow", slow)):
        env = Environment()
        plat = ServerlessPlatform(env, cost=cost or CostModel())
        client, server = deploy_echo_pair(plat)
        plat.start()
        driver = run_driver(env, client, server, n=5)
        times[label] = driver.latency.mean()
    assert times["slow"] > times["fast"] + 20


def test_engine_handles_interleaved_tenants():
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("a", pool_buffers=512))
    plat.add_tenant(Tenant("b", pool_buffers=512))
    ca, sa = deploy_echo_pair(plat, tenant="a", suffix="-a")
    cb, sb = deploy_echo_pair(plat, tenant="b", suffix="-b")
    plat.start()
    da = DirectDriver(env, ca, sa, size=128)
    db = DirectDriver(env, cb, sb, size=128)

    def kickoff():
        yield env.timeout(40_000)
        env.process(da.run(max_requests=8))
        env.process(db.run(max_requests=8))

    env.process(kickoff())
    env.run(until=500_000)
    assert da.completed == 8 and db.completed == 8
    engine = plat.engines["worker0"]
    assert engine.stats.tenant_meter("a").count == 8
    assert engine.stats.tenant_meter("b").count == 8
    # tenants kept separate pools throughout
    for tenant in ("a", "b"):
        pool = plat.pool_for(tenant, "worker1")
        assert pool.free_count == pool.buffer_count - plat.recv_buffers
