"""Tests for function elasticity: replicas, scale-out/in, churn."""

import pytest

from repro.platform import ElasticPlatform, FunctionSpec, ServiceGroup, Tenant
from repro.sim import Environment


def make_elastic(replicas=2, node="worker1"):
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1", pool_buffers=1024))
    caller = plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")
    spec = FunctionSpec("svc", "t1", work_us=5)
    instances = plat.deploy_service(spec, node, replicas=replicas)
    plat.start()
    return env, plat, caller, spec, instances


def drive(env, caller, n, out, dst="svc"):
    def body():
        yield env.timeout(30_000)
        for i in range(n):
            reply = yield from caller.invoke(dst, f"m{i}", 64)
            out.append(reply.payload)

    env.process(body())


# ---------------------------------------------------------------------------
# ServiceGroup
# ---------------------------------------------------------------------------

def test_service_group_round_robin():
    group = ServiceGroup("s")
    group.add("s#0")
    group.add("s#1")
    picks = [group.pick() for _ in range(4)]
    assert picks == ["s#0", "s#1", "s#0", "s#1"]


def test_service_group_empty_raises():
    with pytest.raises(LookupError):
        ServiceGroup("s").pick()


# ---------------------------------------------------------------------------
# deploy / invoke via logical name
# ---------------------------------------------------------------------------

def test_service_invocation_round_trips():
    env, plat, caller, spec, instances = make_elastic()
    out = []
    drive(env, caller, 6, out)
    env.run(until=400_000)
    assert out == [f"m{i}" for i in range(6)]


def test_requests_spread_across_replicas():
    env, plat, caller, spec, instances = make_elastic(replicas=2)
    out = []
    drive(env, caller, 8, out)
    env.run(until=600_000)
    handled = [inst.handled for inst in instances]
    assert sum(handled) == 8
    assert all(h == 4 for h in handled)  # perfect round robin


def test_duplicate_service_rejected():
    env, plat, caller, spec, instances = make_elastic()
    with pytest.raises(ValueError):
        plat.deploy_service(spec, "worker1")


def test_scale_out_unknown_service_rejected():
    env, plat, caller, spec, instances = make_elastic()
    with pytest.raises(KeyError):
        plat.scale_out(FunctionSpec("ghost", "t1"), "worker0")


def test_scale_out_adds_capacity_mid_run():
    env, plat, caller, spec, instances = make_elastic(replicas=1)
    out = []
    drive(env, caller, 4, out)

    def scaler():
        yield env.timeout(100_000)
        plat.scale_out(spec, "worker0")  # second replica, co-located
        yield env.timeout(1000)
        assert plat.replica_count("svc") == 2

    env.process(scaler())
    env.run(until=600_000)
    assert len(out) == 4
    # the late replica exists and is routable
    assert "svc#1" in plat.functions


def test_scale_in_withdraws_routes():
    env, plat, caller, spec, instances = make_elastic(replicas=2)
    out = []

    def body():
        yield env.timeout(30_000)
        for i in range(2):
            reply = yield from caller.invoke("svc", f"a{i}", 64)
            out.append(reply.payload)
        victim = plat.scale_in("svc")
        assert victim == "svc#1"
        for i in range(4):
            reply = yield from caller.invoke("svc", f"b{i}", 64)
            out.append(reply.payload)

    env.process(body())
    env.run(until=800_000)
    assert len(out) == 6
    # all post-retirement requests landed on the surviving replica
    assert plat.functions["svc#0"].handled >= 5
    assert not plat.coordinator.placement.get("svc#1")


def test_scale_in_empty_service_rejected():
    env, plat, caller, spec, instances = make_elastic(replicas=1)
    plat.scale_in("svc")
    with pytest.raises((RuntimeError, IndexError)):
        plat.scale_in("svc")


def test_scale_in_unknown_service_rejected():
    env, plat, caller, spec, instances = make_elastic()
    with pytest.raises(KeyError):
        plat.scale_in("ghost")


def test_singleton_and_service_interoperate():
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1"))
    caller = plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")

    def orchestrator(ctx, msg):
        reply = yield from ctx.invoke("leaf", msg.payload, 64)
        yield from ctx.respond(reply.payload, 64)

    plat.deploy(FunctionSpec("mid", "t1", orchestrator), "worker0")
    plat.deploy_service(FunctionSpec("leaf", "t1", work_us=1), "worker1",
                        replicas=2)
    plat.start()
    out = []
    drive(env, caller, 3, out, dst="mid")
    env.run(until=500_000)
    assert out == ["m0", "m1", "m2"]


def test_replicas_on_different_nodes():
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1"))
    caller = plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")
    spec = FunctionSpec("svc", "t1", work_us=0)
    plat.deploy_service(spec, "worker0", replicas=1)
    plat.scale_out(spec, "worker1")
    plat.start()
    out = []
    drive(env, caller, 4, out)
    env.run(until=500_000)
    assert len(out) == 4
    # one replica local (skmsg), one remote (engine)
    assert caller.iolib.intra_sends == 2
    assert caller.iolib.inter_sends == 2
