"""Tests for the serverless platform: functions, iolib, assembly."""

import pytest

from repro.config import CostModel
from repro.platform import (
    FunctionSpec,
    ServerlessPlatform,
    Tenant,
)
from repro.sim import Environment


def make_platform(**kwargs):
    env = Environment()
    plat = ServerlessPlatform(env, **kwargs)
    plat.add_tenant(Tenant("t1"))
    return env, plat


def drive(env, plat, body, until=500_000):
    def driver():
        yield env.timeout(30_000)  # RC warm-up
        yield from body()

    env.process(driver())
    env.run(until=until)


# ---------------------------------------------------------------------------
# Tenant / deployment plumbing
# ---------------------------------------------------------------------------

def test_tenant_validation():
    with pytest.raises(ValueError):
        Tenant("x", weight=0)
    with pytest.raises(ValueError):
        Tenant("x", pool_buffers=0)


def test_duplicate_tenant_rejected():
    env, plat = make_platform()
    with pytest.raises(ValueError):
        plat.add_tenant(Tenant("t1"))


def test_deploy_unknown_tenant_rejected():
    env, plat = make_platform()
    with pytest.raises(KeyError):
        plat.deploy(FunctionSpec("f", "ghost"), "worker0")


def test_duplicate_function_rejected():
    env, plat = make_platform()
    plat.deploy(FunctionSpec("f", "t1"), "worker0")
    with pytest.raises(ValueError):
        plat.deploy(FunctionSpec("f", "t1"), "worker1")


def test_coordinator_publishes_routes():
    env, plat = make_platform()
    plat.deploy(FunctionSpec("f", "t1"), "worker1")
    for engine in plat.engines.values():
        assert engine.routes.node_for("f") == "worker1"
    assert plat.coordinator.node_of("f") == "worker1"


def test_coordinator_withdraws_routes():
    env, plat = make_platform()
    plat.deploy(FunctionSpec("f", "t1"), "worker1")
    plat.coordinator.function_terminated("f")
    for engine in plat.engines.values():
        assert not engine.routes.has_route("f")


def test_tenant_pools_created_per_node():
    env, plat = make_platform()
    p0 = plat.pool_for("t1", "worker0")
    p1 = plat.pool_for("t1", "worker1")
    assert p0 is not p1
    assert p0.tenant == p1.tenant == "t1"


def test_double_start_rejected():
    env, plat = make_platform()
    plat.start()
    with pytest.raises(RuntimeError):
        plat.start()


# ---------------------------------------------------------------------------
# Function RPC semantics
# ---------------------------------------------------------------------------

def test_cross_node_rpc_round_trip():
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=5), "worker1")
    plat.start()
    got = []

    def body():
        reply = yield from client.invoke("server", "ping", 64)
        got.append(reply.payload)

    drive(env, plat, body)
    assert got == ["ping"]  # default handler echoes
    assert plat.functions["server"].handled == 1


def test_local_rpc_uses_skmsg_not_engine():
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker0")
    plat.start()

    def body():
        yield from client.invoke("server", "ping", 64)

    drive(env, plat, body)
    assert client.iolib.intra_sends == 1
    assert client.iolib.inter_sends == 0
    assert plat.engines["worker0"].stats.tx_messages == 0


def test_local_rpc_is_faster_than_remote():
    results = {}
    for placement in ("worker0", "worker1"):
        env, plat = make_platform()
        client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
        plat.deploy(FunctionSpec("server", "t1", work_us=0), placement)
        plat.start()
        times = []

        def body():
            t0 = env.now
            yield from client.invoke("server", "x", 64)
            times.append(env.now - t0)

        drive(env, plat, body)
        results[placement] = times[0]
    assert results["worker0"] < results["worker1"]


def test_custom_handler_with_nested_invoke():
    env, plat = make_platform()

    def orchestrator(ctx, msg):
        yield from ctx.compute(1)
        reply = yield from ctx.invoke("leaf", {"n": 1}, 64)
        yield from ctx.respond({"leaf_said": reply.payload}, 128)

    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("mid", "t1", orchestrator), "worker0")
    plat.deploy(FunctionSpec("leaf", "t1", work_us=1), "worker1")
    plat.start()
    got = []

    def body():
        reply = yield from client.invoke("mid", "go", 64)
        got.append(reply.payload)

    drive(env, plat, body)
    assert got == [{"leaf_said": {"n": 1}}]


def test_concurrent_invocations_pipeline():
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=100, concurrency=8),
                "worker1")
    plat.start()
    done = []

    def one():
        yield from client.invoke("server", "x", 64)
        done.append(env.now)

    def body():
        procs = [env.process(one()) for _ in range(8)]
        for proc in procs:
            yield proc

    drive(env, plat, body)
    assert len(done) == 8
    # concurrent handlers overlap: total elapsed far below 8 * serial
    assert max(done) - 30_000 < 8 * 100


def test_app_time_tracked():
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=42), "worker1")
    plat.start()

    def body():
        yield from client.invoke("server", "x", 64)

    drive(env, plat, body)
    assert plat.functions["server"].app_time_us == pytest.approx(42.0)


def test_function_latency_recorded():
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=10), "worker1")
    plat.start()

    def body():
        yield from client.invoke("server", "x", 64)

    drive(env, plat, body)
    assert plat.functions["server"].latency.count == 1
    assert plat.functions["server"].latency.mean() >= 10.0


def test_buffers_conserved_after_traffic():
    """No leaks: every pool returns to (total - SRQ-posted) free."""
    env, plat = make_platform()
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker1")
    plat.start()

    def body():
        for _ in range(20):
            yield from client.invoke("server", "x", 256)

    drive(env, plat, body)
    for node in ("worker0", "worker1"):
        pool = plat.pool_for("t1", node)
        assert pool.free_count == pool.buffer_count - plat.recv_buffers


def test_remote_send_without_engine_rejected():
    env = Environment()
    plat = ServerlessPlatform(env, engine_builder=lambda *a: None)
    plat.add_tenant(Tenant("t1"))
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=0), "worker1")
    plat.start()

    def body():
        yield env.timeout(1000)
        yield from client.invoke("server", "x", 64)

    env.process(body())
    with pytest.raises(RuntimeError, match="no network engine"):
        env.run(until=100_000)


def test_usage_snapshot_keys():
    env, plat = make_platform()
    plat.start()
    env.run(until=1000)
    snap = plat.usage_snapshot()
    assert "cpu:worker0" in snap and "dpu:worker0" in snap
    assert "engine:worker0" in snap and "app" in snap
