"""The stdlib dashboard renderer: HTML structure, terminal summary,
and the structural self-check the CI smoke job relies on.

All tests run on a hand-built bundle — no simulation, so they're
instant; the end-to-end render from live monitored runs is covered by
the CI monitor-smoke job.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "dashboard", Path(__file__).resolve().parents[1] / "tools"
    / "dashboard.py")
dashboard = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("dashboard", dashboard)
_SPEC.loader.exec_module(dashboard)


@pytest.fixture
def bundle():
    series = [[float(t), float(t % 7)] for t in range(0, 50_000, 1_000)]
    snapshot = {
        "step_us": 1_000.0,
        "evaluations": 50,
        "rules": {rule: list(series) for rule in dashboard.SPARK_RULES},
        "alerts": [
            {"alert": "slo-latency-gold", "state": "firing",
             "ts": 20_000.0, "window": "fast", "severity": "page",
             "burn": 9.1, "tenant": "gold"},
            {"alert": "slo-latency-gold", "state": "resolved",
             "ts": 30_000.0, "window": "fast", "severity": "info",
             "burn": 0.4, "tenant": "gold"},
        ],
        "alert_spans": [
            {"alert": "slo-latency-gold", "fired_ts": 20_000.0,
             "resolved_ts": 30_000.0, "window": "fast",
             "severity": "page", "burn": 9.1},
            {"alert": "slo-availability-gold", "fired_ts": 40_000.0,
             "resolved_ts": None, "window": "slow",
             "severity": "ticket", "burn": 3.2},
        ],
        "slos": [
            {"name": "slo-latency-gold", "objective": 0.95,
             "firing": False, "tenant": "gold"},
            {"name": "slo-availability-gold", "objective": 0.95,
             "firing": True, "tenant": "gold"},
        ],
    }
    run = {
        "config": "spright", "multiplier": 2.0,
        "offered_rps": 17_000.0, "goodput_rps": 0.0, "rejected": 0,
        "timeline": snapshot["alerts"],
        "alert_spans": snapshot["alert_spans"],
        "first_firing_us": 20_000.0,
        "snapshot": snapshot,
    }
    critpath = {
        "points": [{
            "label": "20 clients", "requests": 500,
            "p50_total_us": 840.0, "p99_total_us": 900.0,
            "dominant_stage_p99": "fn.exec", "dominant_share_p99": 0.61,
            "named_coverage_p99": 1.0, "rps": 4_000.0,
            "table": [
                {"stage": "queueing", "p50_us": 20.0, "p50_share": 0.02,
                 "p99_us": 30.0, "p99_share": 0.03, "mean_share": 0.03},
                {"stage": "fn.exec", "p50_us": 520.0, "p50_share": 0.62,
                 "p99_us": 560.0, "p99_share": 0.61, "mean_share": 0.62},
            ],
        }],
        "shift": [
            {"point": "20 clients", "dominant_stage": "fn.exec",
             "share": 0.61, "p99_total_us": 900.0, "shifted": False},
        ],
    }
    return {"title": "Test <dashboard> & co",
            "overload": [run], "critpath": critpath}


class TestRenderHtml:
    def test_structural_check_passes(self, bundle):
        page = dashboard.render_html(bundle)
        assert dashboard.check_html(page, bundle) == []

    def test_title_and_config_are_escaped(self, bundle):
        page = dashboard.render_html(bundle)
        assert "Test &lt;dashboard&gt; &amp; co" in page
        assert "<dashboard>" not in page

    def test_alerts_render_with_status_badges(self, bundle):
        page = dashboard.render_html(bundle)
        assert "slo-latency-gold" in page
        assert 'class="badge critical"' in page  # page severity
        assert 'class="badge warning"' in page   # ticket severity
        assert "still firing" in page            # unresolved span

    def test_sparklines_carry_alert_bands(self, bundle):
        page = dashboard.render_html(bundle)
        assert page.count("<polyline") == len(dashboard.SPARK_RULES)
        assert 'fill="var(--critical)"' in page

    def test_critpath_table_renders(self, bundle):
        page = dashboard.render_html(bundle)
        assert ">fn.exec<" in page
        assert "61.0%" in page

    def test_quiet_run_says_quiet(self, bundle):
        bundle["overload"][0]["alert_spans"] = []
        page = dashboard.render_html(bundle)
        assert "no SLO alerts fired" in page

    def test_empty_series_render_without_error(self, bundle):
        bundle["overload"][0]["snapshot"]["rules"] = {}
        page = dashboard.render_html(bundle)
        assert dashboard.check_html(page, bundle) == []


class TestCheckHtml:
    def test_detects_missing_alert(self, bundle):
        page = dashboard.render_html(bundle).replace("slo-latency-gold",
                                                     "redacted")
        problems = dashboard.check_html(page, bundle)
        assert any("slo-latency-gold" in p for p in problems)

    def test_detects_unbalanced_tags_and_missing_doctype(self, bundle):
        problems = dashboard.check_html("<html><body></html>", bundle)
        assert "missing doctype" in problems
        assert any("unbalanced" in p for p in problems)

    def test_detects_missing_sparklines(self, bundle):
        page = dashboard.render_html(bundle).replace("<polyline", "<p")
        problems = dashboard.check_html(page, bundle)
        assert any("sparklines" in p for p in problems)


class TestRenderText:
    def test_summary_lists_alerts_and_shift(self, bundle):
        text = dashboard.render_text(bundle)
        assert "spright @ 2.0x" in text
        assert "slo-latency-gold" in text
        assert "20.0ms -> 30.0ms" in text
        assert "fn.exec (61%" in text

    def test_quiet_run_in_text(self, bundle):
        bundle["overload"][0]["alert_spans"] = []
        assert "alerts: none" in dashboard.render_text(bundle)
