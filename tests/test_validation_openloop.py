"""Tests for paper-anchor validation and the open-loop source."""

import pytest

from repro.experiments import ExperimentResult, validation
from repro.experiments.validation import Band
from repro.platform import ServerlessPlatform
from repro.sim import Environment, RngRegistry
from repro.workloads import OpenLoopSource, deploy_http_echo
from repro.ingress import PalladiumIngress


# ---------------------------------------------------------------------------
# Band / validators
# ---------------------------------------------------------------------------

def test_band_inside_and_outside():
    band = Band(10.0, 8.0, 12.0, "test")
    assert band.check(9.0, "x") == []
    violations = band.check(13.0, "x")
    assert violations and "outside" in violations[0]


def test_check_fig12_with_synthetic_result():
    result = ExperimentResult("f12", columns=["variant", "size_bytes",
                                              "mean_rtt_us", "rps"])
    for variant, rtt in (("two-sided", 11.3), ("owrc-best", 13.5),
                         ("owrc-worst", 15.1), ("owdl", 26.3)):
        result.add_row(variant, 4096, rtt, 100)
    assert validation.check_fig12(result) == []
    # now inject a bad number
    result.rows[0][2] = 50.0
    assert validation.check_fig12(result)


def test_check_fig13_ratios():
    result = ExperimentResult("f13", columns=["ingress", "clients", "rps",
                                              "mean_latency_us", "errors"])
    result.add_row("palladium", 64, 160_000, 400, 0)
    result.add_row("f-ingress", 64, 50_000, 1300, 0)
    result.add_row("k-ingress", 64, 11_000, 7000, 0)
    assert validation.check_fig13(result) == []


def test_check_fig15_detects_starvation():
    result = ExperimentResult("f15", columns=["paper_time_s", "tenant-1_rps",
                                              "tenant-2_rps", "tenant-3_rps"])
    result.add_row(120.0, 0, 50_000, 50_000)  # tenant-1 starved
    failures = validation.check_fig15(result)
    assert failures and "zero throughput" in failures[0]


def test_check_fig15_empty_window():
    result = ExperimentResult("f15", columns=["paper_time_s", "a", "b", "c"])
    assert validation.check_fig15(result)


def test_check_fig16_ratios():
    result = ExperimentResult("f16", columns=["chain", "config", "clients",
                                              "rps"])
    for config, rps in (("palladium-dne", 34_000), ("palladium-cne", 20_000),
                        ("fuyao-f", 10_000), ("spright", 8_000),
                        ("nightcore", 3_000)):
        result.add_row("Home Query", config, 80, rps)
    assert validation.check_fig16(result) == []


def test_check_all_dispatch():
    good_f13 = ExperimentResult("f13", columns=["ingress", "clients", "rps",
                                                "mean_latency_us", "errors"])
    good_f13.add_row("palladium", 64, 160_000, 400, 0)
    good_f13.add_row("f-ingress", 64, 50_000, 1300, 0)
    good_f13.add_row("k-ingress", 64, 11_000, 7000, 0)
    failures = validation.check_all({"fig13": good_f13, "unknown": good_f13})
    assert failures == []


# ---------------------------------------------------------------------------
# OpenLoopSource
# ---------------------------------------------------------------------------

def open_loop_setup(rate_rps, rng=None):
    env = Environment()
    plat = ServerlessPlatform(env)
    resolver = deploy_http_echo(plat)
    ingress = PalladiumIngress(env, plat.cluster, plat.fabric, plat.cost,
                               resolver, min_workers=2)
    ingress.add_tenant("echo", buffers=512)
    plat.coordinator.subscribe(ingress.routes)
    plat.register_external(ingress.AGENT, "ingress")
    ingress.start()
    plat.start()
    source = OpenLoopSource(env, plat.cluster, ingress, rate_rps=rate_rps,
                            path="/echo", rng=rng)
    return env, plat, source


def test_open_loop_rate_validation():
    env, plat, _ = open_loop_setup(1000)
    with pytest.raises(ValueError):
        OpenLoopSource(env, plat.cluster, None, rate_rps=0)


def test_open_loop_offers_at_configured_rate():
    env, plat, source = open_loop_setup(10_000)  # one per 100 us

    def kickoff():
        yield env.timeout(50_000)
        yield from source.run(until_us=250_000)

    env.process(kickoff())
    env.run(until=300_000)
    # 200 ms at 10 K RPS => ~2000 offered, all served (under capacity)
    assert source.offered == pytest.approx(2000, rel=0.05)
    assert source.completed == pytest.approx(source.offered, abs=20)


def test_open_loop_poisson_arrivals_with_rng():
    rng = RngRegistry(7).stream("arrivals")
    env, plat, source = open_loop_setup(20_000, rng=rng)

    def kickoff():
        yield env.timeout(50_000)
        yield from source.run(until_us=150_000)

    env.process(kickoff())
    env.run(until=200_000)
    assert source.offered > 1000  # ~2000 expected, randomized
    assert source.completed > 0


def test_open_loop_does_not_self_throttle():
    """Offered load keeps growing even when completions lag (overload)."""
    env, plat, source = open_loop_setup(400_000)  # far above capacity

    def kickoff():
        yield env.timeout(50_000)
        yield from source.run(until_us=150_000)

    env.process(kickoff())
    env.run(until=160_000)
    assert source.offered > source.completed * 1.5
