"""Tests for processor models (repro.hw.cpu)."""

import pytest

from repro.hw import CoreKind, CorePool
from repro.sim import Environment


def test_core_pool_requires_cores():
    with pytest.raises(ValueError):
        CorePool(Environment(), 0)


def test_execute_takes_scaled_time():
    env = Environment()
    pool = CorePool(env, 2, CoreKind.ARM, factor=1.6)
    done = []

    def worker():
        yield from pool.execute(10)
        done.append(env.now)

    env.process(worker())
    env.run()
    assert done == [pytest.approx(16.0)]


def test_pool_schedules_across_cores():
    env = Environment()
    pool = CorePool(env, 2)
    done = []

    def worker(i):
        yield from pool.execute(10)
        done.append((i, env.now))

    for i in range(4):
        env.process(worker(i))
    env.run()
    assert [t for _, t in done] == [10.0, 10.0, 20.0, 20.0]


def test_pinned_core_occupies_core():
    env = Environment()
    pool = CorePool(env, 4)
    core = pool.allocate_pinned("loop")
    assert pool.free_cores == 3
    core.unpin()
    assert pool.free_cores == 4


def test_pinned_core_work_scaled_and_serialized():
    env = Environment()
    pool = CorePool(env, 2, CoreKind.ARM, factor=2.0)
    core = pool.allocate_pinned("dne")
    done = []

    def worker(i):
        yield from core.work(5)
        done.append((i, env.now))

    env.process(worker(0))
    env.process(worker(1))
    env.run()
    # two 5-host-us items at factor 2.0 serialize on the single core
    assert done == [(0, 10.0), (1, 20.0)]


def test_pinned_work_requires_pin():
    env = Environment()
    pool = CorePool(env, 1)
    core = pool.allocate_pinned("x")
    core.unpin()
    with pytest.raises(RuntimeError):
        next(core.work(1))


def test_pinned_core_tracks_useful_time():
    env = Environment()
    pool = CorePool(env, 1)
    core = pool.allocate_pinned("loop")

    def worker():
        yield from core.work(25)

    env.process(worker())
    env.run(until=100)
    assert core.tracker.useful == pytest.approx(25.0)
    assert core.useful_utilization() == pytest.approx(0.25)
    # the pinned core is occupied 100% regardless of useful work
    assert core.tracker.occupied_time(env.now) == pytest.approx(100.0)


def test_work_time_helper():
    env = Environment()
    pool = CorePool(env, 1, factor=1.5)
    core = pool.allocate_pinned("x")
    assert core.work_time(10) == pytest.approx(15.0)


def test_utilization_pct_includes_pinned_and_scheduled():
    env = Environment()
    pool = CorePool(env, 4)
    pool.allocate_pinned("loop")

    def worker():
        yield from pool.execute(50)

    env.process(worker())
    env.run(until=100)
    # pinned core: 100 us occupied; scheduled: 50 us => 150% of one core
    assert pool.utilization_pct() == pytest.approx(150.0)


def test_total_busy_time_snapshot_delta():
    env = Environment()
    pool = CorePool(env, 4)

    def worker():
        yield from pool.execute(10)
        yield env.timeout(10)
        yield from pool.execute(10)

    env.process(worker())
    env.run(until=10)
    snap = pool.total_busy_time()
    env.run(until=40)
    assert pool.total_busy_time() - snap == pytest.approx(10.0)


def test_pinned_release_unblocks_scheduled_work():
    env = Environment()
    pool = CorePool(env, 1)
    core = pool.allocate_pinned("hog")
    done = []

    def worker():
        yield from pool.execute(5)
        done.append(env.now)

    def release():
        yield env.timeout(20)
        core.unpin()

    env.process(worker())
    env.process(release())
    env.run()
    assert done == [25.0]
