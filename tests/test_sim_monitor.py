"""Tests for measurement helpers (repro.sim.monitor) and RNG registry."""

import pytest

from repro.sim import LatencyStats, RateMeter, RngRegistry, TimeSeries, UtilizationTracker
from repro.sim.monitor import summarize


# ---------------------------------------------------------------------------
# TimeSeries
# ---------------------------------------------------------------------------

def test_time_series_records_in_order():
    ts = TimeSeries("x")
    ts.record(1.0, 10.0)
    ts.record(2.0, 20.0)
    assert list(ts) == [(1.0, 10.0), (2.0, 20.0)]
    assert len(ts) == 2


def test_time_series_rejects_time_travel():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 1.0)


def test_time_series_mean_and_last():
    ts = TimeSeries()
    assert ts.mean() == 0.0
    assert ts.last() is None
    ts.record(0.0, 2.0)
    ts.record(1.0, 4.0)
    assert ts.mean() == 3.0
    assert ts.last() == (1.0, 4.0)


def test_time_series_window_mean():
    ts = TimeSeries()
    for t in range(10):
        ts.record(float(t), float(t))
    assert ts.window_mean(2.0, 5.0) == pytest.approx(3.0)
    assert ts.window_mean(100.0, 200.0) == 0.0


# ---------------------------------------------------------------------------
# LatencyStats
# ---------------------------------------------------------------------------

def test_latency_stats_basic():
    stats = LatencyStats()
    for value in (1.0, 2.0, 3.0, 4.0):
        stats.record(value)
    assert stats.count == 4
    assert stats.mean() == 2.5
    assert stats.max() == 4.0


def test_latency_stats_percentiles():
    stats = LatencyStats()
    for value in range(1, 101):
        stats.record(float(value))
    assert stats.p50() == 50.0
    assert stats.p99() == 99.0
    assert stats.percentile(100) == 100.0
    assert stats.percentile(0) == 1.0


def test_latency_stats_rejects_negative():
    with pytest.raises(ValueError):
        LatencyStats().record(-1.0)


def test_latency_stats_empty():
    stats = LatencyStats()
    assert stats.mean() == 0.0
    assert stats.p99() == 0.0
    assert stats.max() == 0.0


def test_latency_percentile_range_check():
    stats = LatencyStats()
    stats.record(1.0)
    with pytest.raises(ValueError):
        stats.percentile(101)


# ---------------------------------------------------------------------------
# RateMeter
# ---------------------------------------------------------------------------

def test_rate_meter_counts():
    meter = RateMeter(bucket=1000.0)
    for t in (10.0, 20.0, 30.0):
        meter.record(t)
    assert meter.count == 3
    assert meter.first_time == 10.0
    assert meter.last_time == 30.0


def test_rate_meter_windowed_rate():
    meter = RateMeter(bucket=1_000_000.0)
    # 100 completions in [0, 100_000): one every 1000 us
    for i in range(100):
        meter.record(i * 1000.0)
    rate = meter.rate(0.0, 100_000.0)
    assert rate == pytest.approx(0.001)  # 1 per 1000 us


def test_rate_meter_subwindow_of_bucket():
    """rate() must work for windows smaller than the reporting bucket."""
    meter = RateMeter(bucket=1_000_000.0)
    for i in range(50):
        meter.record(150_000.0 + i * 100.0)
    assert meter.rate(150_000.0, 200_000.0) > 0
    assert meter.rate(300_000.0, 400_000.0) == 0.0


def test_rate_meter_series_aggregates_buckets():
    meter = RateMeter(bucket=1000.0)
    for i in range(10):
        meter.record(i * 500.0)  # 2 per bucket
    series = meter.series()
    assert all(v == pytest.approx(2 / 1000.0) for _, v in series)


def test_rate_meter_empty_window():
    meter = RateMeter()
    assert meter.rate(0, 0) == 0.0
    assert meter.rate(10, 5) == 0.0


# ---------------------------------------------------------------------------
# UtilizationTracker
# ---------------------------------------------------------------------------

def test_utilization_tracker_busy_accounting():
    tracker = UtilizationTracker()
    tracker.begin_busy(0.0)
    tracker.end_busy(10.0)
    assert tracker.occupied_time(20.0) == 10.0
    tracker.begin_busy(15.0)
    assert tracker.occupied_time(20.0) == 15.0


def test_utilization_tracker_useful_fraction():
    tracker = UtilizationTracker()
    tracker.add_useful(25.0)
    assert tracker.useful_fraction(100.0) == pytest.approx(0.25)
    assert tracker.useful_fraction(0.0) == 0.0


def test_utilization_tracker_fraction_capped():
    tracker = UtilizationTracker()
    tracker.add_useful(500.0)
    assert tracker.useful_fraction(100.0) == 1.0


def test_summarize():
    assert summarize([]) == {"mean": 0.0, "min": 0.0, "max": 0.0}
    result = summarize([1.0, 2.0, 3.0])
    assert result == {"mean": 2.0, "min": 1.0, "max": 3.0}


# ---------------------------------------------------------------------------
# RngRegistry
# ---------------------------------------------------------------------------

def test_rng_streams_are_deterministic():
    a = RngRegistry(42).stream("load")
    b = RngRegistry(42).stream("load")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_streams_are_independent():
    reg = RngRegistry(42)
    load = reg.stream("load")
    _ = load.random()
    other = reg.stream("other")
    fresh = RngRegistry(42).stream("other")
    assert other.random() == fresh.random()


def test_rng_different_names_differ():
    reg = RngRegistry(0)
    assert reg.stream("a").random() != reg.stream("b").random()


def test_rng_fork_is_deterministic():
    a = RngRegistry(1).fork("rep1").stream("s")
    b = RngRegistry(1).fork("rep1").stream("s")
    c = RngRegistry(1).fork("rep2").stream("s")
    assert a.random() == b.random()
    assert a.random() != c.random()
