"""Tests for the baseline data planes: SPRIGHT, FUYAO, NightCore wiring."""

import pytest

from repro.baselines import (
    NIGHTCORE_IPC_US,
    build_cne,
    build_dne,
    build_fuyao,
    build_spright,
    nightcore_engine_builder,
)
from repro.config import CostModel
from repro.platform import FunctionSpec, ServerlessPlatform, Tenant
from repro.sim import Environment


def make_platform(builder, **kwargs):
    env = Environment()
    plat = ServerlessPlatform(env, engine_builder=builder, **kwargs)
    plat.add_tenant(Tenant("t1"))
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=5), "worker1")
    plat.start()
    return env, plat, client


def run_rpcs(env, plat, client, n=10, until=800_000):
    replies = []

    def body():
        yield env.timeout(60_000)
        for i in range(n):
            reply = yield from client.invoke("server", f"msg{i}", 256)
            replies.append(reply.payload)

    env.process(body())
    env.run(until=until)
    return replies


# ---------------------------------------------------------------------------
# SPRIGHT
# ---------------------------------------------------------------------------

def test_spright_cross_node_rpc():
    env, plat, client = make_platform(build_spright)
    replies = run_rpcs(env, plat, client)
    assert replies == [f"msg{i}" for i in range(10)]


def test_spright_engine_not_pinned():
    """SPRIGHT's forwarder is event-driven: no dedicated polling core."""
    env, plat, client = make_platform(build_spright)
    for node in ("worker0", "worker1"):
        assert plat.cluster.node(node).cpu.pinned == []


def test_spright_recycles_buffers():
    env, plat, client = make_platform(build_spright)
    run_rpcs(env, plat, client, n=12)
    for node in ("worker0", "worker1"):
        pool = plat.pool_for("t1", node)
        assert pool.free_count == pool.buffer_count  # no SRQ in SPRIGHT


def test_spright_slower_than_palladium():
    def mean_rtt(builder):
        env, plat, client = make_platform(builder)
        latencies = []

        def body():
            yield env.timeout(60_000)
            for _ in range(5):
                t0 = env.now
                yield from client.invoke("server", "x", 256)
                latencies.append(env.now - t0)

        env.process(body())
        env.run(until=800_000)
        return sum(latencies) / len(latencies)

    assert mean_rtt(build_spright) > mean_rtt(build_dne) * 1.5


# ---------------------------------------------------------------------------
# FUYAO
# ---------------------------------------------------------------------------

def test_fuyao_cross_node_rpc():
    env, plat, client = make_platform(build_fuyao)
    replies = run_rpcs(env, plat, client)
    assert replies == [f"msg{i}" for i in range(10)]


def test_fuyao_pins_a_polling_core_per_node():
    env, plat, client = make_platform(build_fuyao)
    for node in ("worker0", "worker1"):
        pinned = plat.cluster.node(node).cpu.pinned
        assert len(pinned) == 1
        assert "poller" in pinned[0].name


def test_fuyao_uses_one_sided_writes_no_races():
    """The dedicated RDMA pool keeps one-sided writes race-free."""
    env, plat, client = make_platform(build_fuyao)
    run_rpcs(env, plat, client, n=8)
    for node in ("worker0", "worker1"):
        assert plat.fabric.rnic(node).potential_races == 0


def test_fuyao_credits_are_returned():
    env, plat, client = make_platform(build_fuyao)
    run_rpcs(env, plat, client, n=8)
    env.run(until=env.now + 50_000)
    engine = plat.engines["worker0"]
    credits = engine._credits[("worker1", "t1")]
    assert len(credits.items) == engine.SLOTS_PER_PEER


def test_fuyao_engine_counts_messages():
    env, plat, client = make_platform(build_fuyao)
    run_rpcs(env, plat, client, n=6)
    assert plat.engines["worker0"].stats.tx_messages == 6
    assert plat.engines["worker1"].stats.rx_messages == 6


# ---------------------------------------------------------------------------
# CNE
# ---------------------------------------------------------------------------

def test_cne_cross_node_rpc():
    env, plat, client = make_platform(build_cne)
    replies = run_rpcs(env, plat, client)
    assert replies == [f"msg{i}" for i in range(10)]


def test_cne_pins_host_core_not_dpu():
    env, plat, client = make_platform(build_cne)
    for node in ("worker0", "worker1"):
        assert len(plat.cluster.node(node).cpu.pinned) == 1
        assert plat.cluster.node(node).dpu.pinned == []


def test_dne_pins_dpu_core_not_host():
    env, plat, client = make_platform(build_dne)
    for node in ("worker0", "worker1"):
        assert plat.cluster.node(node).cpu.pinned == []
        assert len(plat.cluster.node(node).dpu.pinned) == 1


# ---------------------------------------------------------------------------
# NightCore
# ---------------------------------------------------------------------------

def test_nightcore_has_no_engine():
    env = Environment()
    plat = ServerlessPlatform(env, engine_builder=nightcore_engine_builder,
                              intra_ipc_us=NIGHTCORE_IPC_US)
    assert plat.engines == {}


def test_nightcore_single_node_rpc_works():
    env = Environment()
    plat = ServerlessPlatform(env, engine_builder=nightcore_engine_builder,
                              intra_ipc_us=NIGHTCORE_IPC_US)
    plat.add_tenant(Tenant("t1"))
    client = plat.deploy(FunctionSpec("client", "t1", work_us=0), "worker0")
    plat.deploy(FunctionSpec("server", "t1", work_us=5), "worker0")
    plat.start()
    replies = []

    def body():
        yield env.timeout(1000)
        reply = yield from client.invoke("server", "hi", 64)
        replies.append(reply.payload)

    env.process(body())
    env.run(until=100_000)
    assert replies == ["hi"]


def test_nightcore_ipc_helper():
    from repro.baselines import NIGHTCORE_IPC_US, nightcore_ipc_us
    from repro.config import CostModel
    assert nightcore_ipc_us(CostModel()) == NIGHTCORE_IPC_US
    assert NIGHTCORE_IPC_US > CostModel().sk_msg_us  # queues cost more
