"""Smoke + shape tests for every experiment (tiny parameterizations).

These check the *direction* of each paper result with small runs; the
full-size reproduction lives in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.config import CostModel
from repro.experiments import (
    ExperimentResult,
    format_table,
    run_table1,
)
from repro.experiments.fig09_comch import CHANNELS, run_channel
from repro.experiments.fig11_offpath import run_echo_point
from repro.experiments.fig12_primitives import run_variant
from repro.experiments.fig13_ingress import run_ingress_point
from repro.experiments.fig15_tenancy import run_tenancy
from repro.experiments.fig16_boutique import run_boutique_point


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def test_experiment_result_table_roundtrip():
    result = ExperimentResult("demo", columns=["a", "b"])
    result.add_row(1, 2.5)
    result.add_row("x", 10000.0)
    assert result.column("a") == [1, "x"]
    assert result.row_dict(0) == {"a": 1, "b": 2.5}
    assert result.find_row(a="x")["b"] == 10000.0
    text = str(result)
    assert "demo" in text and "10,000" in text


def test_experiment_result_row_arity_checked():
    result = ExperimentResult("demo", columns=["a", "b"])
    with pytest.raises(ValueError):
        result.add_row(1)


def test_experiment_result_find_row_missing():
    result = ExperimentResult("demo", columns=["a"])
    with pytest.raises(KeyError):
        result.find_row(a=1)


def test_format_table_handles_empty():
    assert "empty" in format_table("empty", ["x"], [])


# ---------------------------------------------------------------------------
# Fig. 9: channel ordering and Comch-P collapse
# ---------------------------------------------------------------------------

def test_fig09_latency_ordering():
    rtts = {}
    for name, cls in CHANNELS.items():
        rtts[name], _ = run_channel(cls, functions=2, duration_us=10_000)
    assert rtts["comch-p"] < rtts["comch-e"] < rtts["tcp"]


def test_fig09_comch_p_collapses_past_budget():
    _, rps_small = run_channel(CHANNELS["comch-p"], functions=4,
                               duration_us=10_000)
    _, rps_big = run_channel(CHANNELS["comch-p"], functions=9,
                             duration_us=10_000)
    assert rps_big < rps_small / 2


def test_fig09_comch_e_stable_past_budget():
    rtt_small, _ = run_channel(CHANNELS["comch-e"], functions=4,
                               duration_us=10_000)
    rtt_big, _ = run_channel(CHANNELS["comch-e"], functions=9,
                             duration_us=10_000)
    assert rtt_big < rtt_small * 2


# ---------------------------------------------------------------------------
# Fig. 11: off-path beats on-path, gap grows with concurrency
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig11_points():
    points = {}
    for mode in ("off-path", "on-path"):
        for concurrency in (1, 24):
            points[(mode, concurrency)] = run_echo_point(
                mode, 1024, concurrency, duration_us=40_000
            )
    return points


def test_fig11_offpath_lower_latency(fig11_points):
    assert fig11_points[("off-path", 1)][1] < fig11_points[("on-path", 1)][1]


def test_fig11_offpath_higher_rps_under_load(fig11_points):
    off = fig11_points[("off-path", 24)][0]
    on = fig11_points[("on-path", 24)][0]
    assert 1.1 < off / on < 1.6  # paper: up to ~30%


def test_fig11_gap_grows_with_concurrency(fig11_points):
    gap_low = (fig11_points[("off-path", 1)][0]
               / fig11_points[("on-path", 1)][0])
    gap_high = (fig11_points[("off-path", 24)][0]
                / fig11_points[("on-path", 24)][0])
    assert gap_high > gap_low


# ---------------------------------------------------------------------------
# Fig. 12: primitive ordering
# ---------------------------------------------------------------------------

def test_fig12_two_sided_wins_at_4kb():
    cost = CostModel()
    rtts = {}
    for variant in ("two-sided", "owrc-best", "owrc-worst", "owdl"):
        bench = run_variant(variant, cost, 4096, 1, 40_000)
        rtts[variant] = bench.latency.mean()
    assert rtts["two-sided"] < rtts["owrc-best"] < rtts["owrc-worst"] < rtts["owdl"]
    # OWDL roughly 2x+ the two-sided RTT (paper: 2.25x)
    assert rtts["owdl"] / rtts["two-sided"] > 1.8


def test_fig12_two_sided_rtt_near_paper():
    cost = CostModel()
    bench = run_variant("two-sided", cost, 4096, 1, 40_000)
    assert bench.latency.mean() == pytest.approx(11.6, rel=0.15)


# ---------------------------------------------------------------------------
# Fig. 13: ingress ordering
# ---------------------------------------------------------------------------

def test_fig13_ordering():
    results = {
        kind: run_ingress_point(kind, clients=12, duration_us=60_000)
        for kind in ("k-ingress", "f-ingress", "palladium")
    }
    assert results["palladium"][0] > results["f-ingress"][0] > results["k-ingress"][0]
    assert results["palladium"][1] < results["k-ingress"][1]


# ---------------------------------------------------------------------------
# Fig. 15: DWRR weighted shares vs FCFS starvation
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tenancy_runs():
    return {
        sched: run_tenancy(sched, time_scale=1 / 480.0)
        for sched in ("dwrr", "fcfs")
    }


def _window_rates(result, lo_s, hi_s):
    rows = [r for r in result.rows if lo_s <= r[0] <= hi_s]
    assert rows, f"no samples in [{lo_s}, {hi_s}]"
    n = len(rows)
    return [sum(r[i] for r in rows) / n for i in (1, 2, 3)]


def test_fig15_dwrr_6_to_1_split(tenancy_runs):
    t1, t2, _ = _window_rates(tenancy_runs["dwrr"], 40, 80)
    assert t1 / t2 == pytest.approx(6.0, rel=0.25)


def test_fig15_dwrr_three_way_split(tenancy_runs):
    t1, t2, t3 = _window_rates(tenancy_runs["dwrr"], 100, 140)
    assert t1 / t2 == pytest.approx(6.0, rel=0.35)
    assert t3 / t2 == pytest.approx(2.0, rel=0.35)


def test_fig15_fcfs_starves_tenant1(tenancy_runs):
    dwrr_t1 = _window_rates(tenancy_runs["dwrr"], 40, 80)[0]
    fcfs_t1 = _window_rates(tenancy_runs["fcfs"], 40, 80)[0]
    assert fcfs_t1 < 0.75 * dwrr_t1


# ---------------------------------------------------------------------------
# Fig. 16 / Table 2: data plane ordering (single chain, small run)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def boutique_80():
    return {
        config: run_boutique_point(config, "Home Query", 40,
                                   duration_us=120_000)
        for config in ("palladium-dne", "palladium-cne", "spright",
                       "nightcore")
    }


def test_fig16_dne_beats_all(boutique_80):
    dne = boutique_80["palladium-dne"]["rps"]
    for other in ("palladium-cne", "spright", "nightcore"):
        assert dne > boutique_80[other]["rps"], other


def test_fig16_nightcore_worst(boutique_80):
    nightcore = boutique_80["nightcore"]["rps"]
    for other in ("palladium-dne", "palladium-cne", "spright"):
        assert nightcore < boutique_80[other]["rps"], other


def test_fig16_dne_uses_dpu_not_cpu_engine_cores(boutique_80):
    assert boutique_80["palladium-dne"]["dpu_pct"] > 150
    assert boutique_80["palladium-cne"]["dpu_pct"] == 0


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def test_table1_matches_paper_matrix():
    result = run_table1()
    rows = {row[0]: row[1:] for row in result.rows}
    assert rows["PALLADIUM"] == ["yes", "yes", "yes", "yes"]
    assert rows["NightCore"] == ["no", "no", "no", "no"]
    assert rows["SPRIGHT"] == ["no", "no", "no", "no"]
    assert rows["FUYAO"][2] == "yes"  # DPU offloading
    assert rows["RMMAP"][1] == "yes"  # distributed zero-copy
