"""Live migration: checkpoint/restore, handover, drains, fallbacks."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.migration import LiveMigrator, kill_and_cold_start
from repro.platform import (
    ElasticPlatform,
    FunctionSpec,
    ServerlessPlatform,
    Tenant,
)
from repro.sim import Environment
from repro.telemetry import Telemetry


def make_platform(workers=2, svc_work_us=5, svc_concurrency=4,
                  telemetry=False, elastic=False):
    env = Environment()
    if telemetry:
        Telemetry.install(env)
    cls = ElasticPlatform if elastic else ServerlessPlatform
    plat = cls(env, workers=workers)
    plat.add_tenant(Tenant("t1", pool_buffers=1024))
    caller = plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")
    svc = plat.deploy(
        FunctionSpec("svc", "t1", work_us=svc_work_us,
                     concurrency=svc_concurrency), "worker1")
    plat.start()
    return env, plat, caller, svc


def drive(env, caller, n, out, dst="svc", start_us=30_000, gap_us=500):
    def body():
        yield env.timeout(start_us)
        for i in range(n):
            reply = yield from caller.invoke(dst, f"m{i}", 64)
            out.append(reply.payload)
            if gap_us:
                yield env.timeout(gap_us)

    env.process(body())


def migrate_at(env, plat, at_us, dst="worker0", holder=None, **kwargs):
    holder = holder if holder is not None else {}

    def proc():
        yield env.timeout(at_us)
        holder["record"] = yield from plat.migrate_function(
            "svc", dst, **kwargs)

    env.process(proc())
    return holder


# ---------------------------------------------------------------------------
# checkpoint/restore roundtrip
# ---------------------------------------------------------------------------

def test_migration_roundtrip_under_traffic():
    env, plat, caller, svc = make_platform()
    out = []
    drive(env, caller, 20, out)
    holder = migrate_at(env, plat, 33_000, state_bytes=256 * 1024)
    env.run(until=400_000)
    record = holder["record"]
    assert record.ok
    assert record.downtime_us > 0
    assert record.bytes_copied > 256 * 1024
    # ordered request/reply stream survives the move, nothing lost
    assert out == [f"m{i}" for i in range(20)]
    assert plat.coordinator.node_of("svc") == "worker0"
    assert svc.migrations == 1
    assert svc.handled == 20


def test_migrated_instance_runs_on_target_node():
    env, plat, caller, svc = make_platform()
    out = []
    drive(env, caller, 10, out)
    migrate_at(env, plat, 33_000)
    env.run(until=400_000)
    assert svc.iolib.runtime.node.name == "worker0"
    # the old node no longer has an intra-node route for svc
    assert not plat.runtimes["worker1"].intra_routes.is_local("svc")
    assert plat.runtimes["worker0"].intra_routes.is_local("svc")
    # every engine's inter-node table agrees with the placement record
    for engine in plat.engines.values():
        assert engine.routes.node_for("svc") == "worker0"


def test_migration_checkpoints_queued_cargo():
    # single-threaded slow service: a burst parks requests in its
    # queues, the freeze drains them into the checkpoint image.
    env, plat, caller, svc = make_platform(svc_work_us=2_000,
                                           svc_concurrency=1)
    out = []
    for i in range(6):
        drive(env, caller, 1, out, gap_us=0, start_us=30_000 + i)
    holder = migrate_at(env, plat, 31_000, state_bytes=64 * 1024,
                        dst="worker0")
    env.run(until=600_000)
    record = holder["record"]
    assert record.ok
    carried = record.messages_checkpointed + record.messages_redirected
    assert carried >= 1
    assert sorted(out) == sorted(f"m0" for _ in range(6))
    assert svc.handled == 6


def test_migration_same_node_rejected():
    env, plat, caller, svc = make_platform()
    with pytest.raises(ValueError):
        plat.migrate_function("svc", "worker1").send(None)


def test_migration_to_dead_node_rejected():
    env, plat, caller, svc = make_platform(workers=3)
    plat.crash_node("worker2")
    with pytest.raises(RuntimeError):
        plat.migrate_function("svc", "worker2").send(None)


# ---------------------------------------------------------------------------
# quiesce timeout / abort path
# ---------------------------------------------------------------------------

def make_hung_platform():
    """svc's handler blocks forever on a sink that never finishes."""
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant("t1", pool_buffers=1024))
    caller = plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")

    def svc_handler(ctx, msg):
        yield from ctx.invoke("sink", "x", 64)
        yield from ctx.respond("done", 64)

    svc = plat.deploy(FunctionSpec("svc", "t1", handler=svc_handler),
                      "worker1")
    plat.deploy(FunctionSpec("sink", "t1", work_us=10_000_000.0), "worker0")
    plat.start()
    return env, plat, caller, svc


def test_quiesce_timeout_aborts_and_instance_recovers():
    env, plat, caller, svc = make_hung_platform()
    out = []
    drive(env, caller, 1, out)  # wedges svc's only visible handler
    holder = migrate_at(env, plat, 35_000, quiesce_timeout_us=5_000.0)
    env.run(until=100_000)
    record = holder["record"]
    assert not record.ok
    assert record.reason == "quiesce-timeout"
    assert plat.coordinator.node_of("svc") == "worker1"  # never flipped
    assert not svc._frozen  # thawed in place, still serving
    assert plat.migrator.aborts == 1


# ---------------------------------------------------------------------------
# graceful node drain
# ---------------------------------------------------------------------------

def test_drain_node_migrates_all_and_withdraws():
    env, plat, caller, svc = make_platform()
    b = plat.deploy(FunctionSpec("aux", "t1", work_us=5), "worker1")
    out = []
    drive(env, caller, 8, out)
    done = {}

    def drain():
        yield env.timeout(32_000)
        done["migrated"] = yield from plat.drain_node("worker1")

    env.process(drain())
    env.run(until=400_000)
    assert done["migrated"] == ["aux", "svc"]
    assert "worker1" in plat.withdrawn_nodes
    assert not plat.runtimes["worker1"].alive
    assert plat.coordinator.node_of("svc") == "worker0"
    assert plat.coordinator.node_of("aux") == "worker0"
    assert len(out) == 8
    kinds = [e[0] for e in plat.coordinator.events]
    assert "node-drained" in kinds and "node-drain-expired" not in kinds


def test_drain_deadline_expiry_falls_back_to_crash():
    env, plat, caller, svc = make_hung_platform()
    out = []
    drive(env, caller, 1, out)  # svc cannot quiesce

    def drain():
        yield env.timeout(35_000)
        yield from plat.drain_node("worker1", deadline_us=4_000.0)

    env.process(drain())
    env.run(until=100_000)
    events = {e[0]: e for e in plat.coordinator.events}
    assert "node-drain-expired" in events
    assert events["node-drain-expired"][2] == ("svc",)
    assert not plat.runtimes["worker1"].alive
    assert "worker1" not in plat.withdrawn_nodes  # crashed, not drained
    assert svc.crashed


def test_drain_via_fault_plan():
    env, plat, caller, svc = make_platform()
    out = []
    drive(env, caller, 6, out)
    plan = FaultPlan().node_drain(at_us=32_000, node="worker1",
                                  deadline_us=60_000.0)
    injector = FaultInjector(env, plat, plan)
    injector.start()
    env.run(until=400_000)
    assert injector.timeline == [(32_000.0, "node-drain", "worker1",
                                  "scheduled")]
    assert "worker1" in plat.withdrawn_nodes
    assert len(out) == 6


def test_fault_plan_node_drain_builder():
    plan = FaultPlan().node_drain(at_us=10.0, node="w1", deadline_us=5.0,
                                  state_bytes=4096)
    (event,) = plan.events
    assert event.kind == "node-drain"
    assert event.target == "w1"
    assert event.params == {"deadline_us": 5.0, "state_bytes": 4096}


# ---------------------------------------------------------------------------
# migrate during a link flap
# ---------------------------------------------------------------------------

def test_migration_survives_link_flap():
    def run(flap):
        env, plat, caller, svc = make_platform()
        out = []
        drive(env, caller, 12, out)
        if flap:
            plan = FaultPlan().link_flap(at_us=33_500, src="worker1",
                                         dst="worker0", down_us=8_000.0)
            FaultInjector(env, plat, plan).start()
        holder = migrate_at(env, plat, 33_000, state_bytes=1024 * 1024)
        env.run(until=500_000)
        return holder["record"], out

    base, out_base = run(flap=False)
    flapped, out_flap = run(flap=True)
    assert base.ok and flapped.ok
    # the copy stalls while the link is down, stretching the blackout,
    # but the handover still completes and no request is lost
    assert flapped.downtime_us > base.downtime_us + 5_000.0
    assert out_base == out_flap == [f"m{i}" for i in range(12)]


# ---------------------------------------------------------------------------
# recovery must not resurrect stale routes (elasticity fix)
# ---------------------------------------------------------------------------

def test_node_recovery_skips_replicas_migrated_during_outage():
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1", pool_buffers=1024))
    plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")
    plat.deploy_service(FunctionSpec("svc", "t1", work_us=5), "worker1",
                        replicas=2)
    plat.start()
    plat.crash_node("worker1")
    assert plat.replica_count("svc") == 0
    # while worker1 is down both replicas are re-placed on worker0
    # (what a drain-or-relocate controller would do); the placement
    # record — authoritative — now points away from worker1
    for rid in ("svc#0", "svc#1"):
        plat.coordinator.placement[rid] = "worker0"
        plat.services["svc"].add(rid)
    plat.restart_node("worker1")
    # recovery must not double-add or resurrect worker1-era records
    assert plat.services["svc"].replicas == ["svc#0", "svc#1"]
    assert plat.coordinator.placement["svc#0"] == "worker0"


def test_node_recovery_restores_replicas_still_placed_there():
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1", pool_buffers=1024))
    plat.deploy(FunctionSpec("caller", "t1", work_us=0), "worker0")
    plat.deploy_service(FunctionSpec("svc", "t1", work_us=5), "worker1",
                        replicas=2)
    plat.start()
    plat.crash_node("worker1")
    restored = plat.handle_node_recovery("worker1")
    # direct restart path: placement unchanged, both come back
    assert sorted(restored) == ["svc#0", "svc#1"]


# ---------------------------------------------------------------------------
# kill-and-cold-start baseline
# ---------------------------------------------------------------------------

def test_cold_start_baseline_relocates_slowly():
    env, plat, caller, svc = make_platform()
    done = {}

    def cold():
        yield env.timeout(30_000)
        t0 = env.now
        done["replacement"] = yield from kill_and_cold_start(
            plat, "svc", "worker0")
        done["took"] = env.now - t0

    env.process(cold())
    out = []
    drive(env, caller, 3, out, start_us=200_000)
    env.run(until=600_000)
    assert done["took"] == plat.cost.cold_start_us
    assert plat.coordinator.node_of("svc") == "worker0"
    assert out == ["m0", "m1", "m2"]  # replacement serves traffic
    assert done["replacement"] is plat.functions["svc"]
    assert done["replacement"] is not svc


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------

def test_migration_emits_span_tree_and_metrics():
    env, plat, caller, svc = make_platform(telemetry=True)
    out = []
    drive(env, caller, 6, out)
    migrate_at(env, plat, 33_000, state_bytes=128 * 1024)
    env.run(until=400_000)
    tel = env.telemetry
    roots = tel.tracer.find("migrate")
    names = sorted({s.name for s in roots})
    assert names == ["migrate", "migrate.checkpoint", "migrate.copy",
                     "migrate.flip", "migrate.restore"]
    assert tel.tracer.check_integrity() == []
    snap = tel.metrics.snapshot()
    assert snap["migrations_total"]["values"][0]["value"] == 1
    assert "migration_downtime_us" in snap
    assert "migration_bytes_copied" in snap


def test_migrator_lazy_and_optional():
    # a platform that never migrates has no migrator state at all
    env, plat, caller, svc = make_platform()
    assert plat._migrator is None
    assert isinstance(plat.migrator, LiveMigrator)
    assert plat.migrator is plat.migrator  # cached
