"""Tests for the explicit RDMA control plane: QP state machines, MR
lifecycle, pre-warm policies, the ops/sec ceiling, and the reconnect
edge cases around them."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CostModel
from repro.faults import FaultInjector, FaultPlan
from repro.hw import build_cluster
from repro.platform import ElasticPlatform, FunctionSpec, Tenant
from repro.rdma import (
    ConnectionManager,
    ControlPlaneConfig,
    DemandPredictivePrewarm,
    FixedFloorPrewarm,
    IllegalTransition,
    LEGAL_TRANSITIONS,
    QPState,
    QueuePair,
    RdmaFabric,
)
from repro.sim import Environment


def make_fabric(cost=None, workers=2):
    env = Environment()
    cost = cost or CostModel()
    cluster = build_cluster(env, cost, workers=workers)
    fabric = RdmaFabric(env, cluster, cost)
    for index in range(workers):
        fabric.install_rnic(f"worker{index}")
    return env, cost, fabric


def run_connect(config=None, peer_alive=None, **mgr_kwargs):
    env, cost, fabric = make_fabric()
    mgr = ConnectionManager(env, fabric, "worker0", cost, config=config,
                            **mgr_kwargs)
    if peer_alive is not None:
        mgr.peer_alive = peer_alive
    out = {}

    def setup():
        out["qp"] = yield from mgr.get_connection("worker1", "t")

    env.process(setup())
    env.run()
    return env, mgr, out["qp"]


# ---------------------------------------------------------------------------
# verbs state machine
# ---------------------------------------------------------------------------

def test_verbs_ladder_walks_to_rts():
    env = Environment()
    qp = QueuePair(env, "a", "b", "t")
    assert qp.verbs_state == QPState.RESET
    qp.transition(QPState.INIT)
    qp.transition(QPState.RTR)
    qp.transition(QPState.RTS)
    assert qp.is_rts
    assert qp.transitions == [
        (QPState.RESET, QPState.INIT),
        (QPState.INIT, QPState.RTR),
        (QPState.RTR, QPState.RTS),
    ]


def test_skipping_a_rung_is_illegal():
    env = Environment()
    qp = QueuePair(env, "a", "b", "t")
    with pytest.raises(IllegalTransition):
        qp.transition(QPState.RTR)  # RESET -> RTR skips INIT
    with pytest.raises(IllegalTransition):
        qp.transition(QPState.RTS)


def test_error_is_terminal():
    env = Environment()
    qp = QueuePair(env, "a", "b", "t")
    qp.transition(QPState.INIT)
    qp.fail("test")
    assert qp.is_errored
    assert qp.verbs_state == QPState.ERROR
    with pytest.raises(IllegalTransition):
        qp.transition(QPState.RTR)
    # fail() is idempotent and records no duplicate edge
    edges_before = list(qp.transitions)
    qp.fail("again")
    assert qp.transitions == edges_before


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from([QPState.INIT, QPState.RTR, QPState.RTS,
                                 QPState.ERROR]), max_size=6))
def test_property_every_recorded_transition_is_legal(sequence):
    """Whatever edges a caller attempts, only legal ones are recorded."""
    env = Environment()
    qp = QueuePair(env, "a", "b", "t")
    for target in sequence:
        try:
            qp.transition(target)
        except IllegalTransition:
            pass
    assert all(edge in LEGAL_TRANSITIONS for edge in qp.transitions)
    # and the recorded edges chain: each starts where the last ended
    walked = QPState.RESET
    for src, dst in qp.transitions:
        assert src == walked
        walked = dst
    assert qp.verbs_state == walked


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["get", "fail", "evict", "warm"]),
                min_size=1, max_size=8))
def test_property_handed_out_qps_are_rts(ops):
    """Any op interleaving: a live peer's manager only hands out RTS
    QPs, and every QP it ever made took only legal edges."""
    env, cost, fabric = make_fabric()
    mgr = ConnectionManager(env, fabric, "worker0", cost)
    handed = []

    def driver():
        for op in ops:
            if op == "get":
                qp = yield from mgr.get_connection("worker1", "t")
                handed.append(qp)
            elif op == "fail":
                mgr.fail_connections()
            elif op == "evict":
                mgr.evict_errored()
            else:
                yield from mgr.warm_up("worker1", "t", count=2)

    env.process(driver())
    env.run()
    assert len(handed) == ops.count("get")
    for qp in handed:
        assert qp.is_rts or qp.is_errored  # errored only *after* handout
        assert all(edge in LEGAL_TRANSITIONS for edge in qp.transitions)
    # errored QPs may linger pooled until pruned; after eviction every
    # remaining pooled QP is RTS
    mgr.evict_errored()
    pooled = [qp for pool in mgr._pool.values() for qp in pool]
    for qp in pooled:
        assert qp.is_rts and not qp.is_errored


# ---------------------------------------------------------------------------
# flat vs explicit handshakes
# ---------------------------------------------------------------------------

def test_flat_default_charges_exactly_rc_setup():
    env, mgr, qp = run_connect()
    assert qp.is_rts
    assert qp.setup_us == pytest.approx(CostModel().rc_setup_us)
    # total time = handshake + the shadow-QP activation on handout
    assert env.now == pytest.approx(
        CostModel().rc_setup_us + CostModel().qp_activate_us)


def test_explicit_handshake_decomposes_the_ladder():
    config = ControlPlaneConfig(explicit=True)
    env, mgr, qp = run_connect(config=config)
    assert qp.is_rts and qp.peer is not None and qp.peer.is_rts
    floor = (config.reset_to_init_us + config.init_to_rtr_us
             + config.rtr_to_rts_us
             + config.cm_round_trips * config.cm_processing_us)
    # the CM datagrams ride the real links, so the total exceeds the
    # sum of the command costs by the round-trip latency
    assert qp.setup_us > floor
    # ...and the defaults are calibrated near the flat rc_setup_us
    assert qp.setup_us == pytest.approx(CostModel().rc_setup_us, rel=0.05)


def test_explicit_dead_peer_burns_time_and_errors():
    config = ControlPlaneConfig(explicit=True)
    env, mgr, qp = run_connect(config=config,
                               peer_alive=lambda remote: False)
    assert qp.is_errored
    assert mgr.connect_failures == 1
    assert mgr.cp.connect_failures == 1
    assert env.now > 0  # the failed handshake still burned setup time


def test_ceiling_fifo_queues_concurrent_setups():
    env, cost, fabric = make_fabric()
    config = ControlPlaneConfig(explicit=True, ops_per_sec=100.0)
    mgr = ConnectionManager(env, fabric, "worker0", cost, config=config)
    qps = []

    def one(i):
        qp = yield from mgr.get_connection("worker1", "t", fn=f"f{i}")
        qps.append(qp)

    # function scope => no pool sharing => both pay full handshakes
    cfg = ControlPlaneConfig(explicit=True, ops_per_sec=100.0,
                             share_scope="function")
    mgr.config = cfg
    mgr.cp.config = cfg
    env.process(one(0))
    env.process(one(1))
    env.run()
    assert len(qps) == 2
    # 4 verbs ops at 100/s = 40 ms of command-queue time per handshake:
    # the second handshake queued behind the first
    assert mgr.cp.throttle_wait_us > 0
    slow = max(qp.setup_us for qp in qps)
    fast = min(qp.setup_us for qp in qps)
    assert slow >= fast + 30_000.0


def test_unlimited_ceiling_adds_no_wait():
    env, mgr, qp = run_connect(config=ControlPlaneConfig(explicit=True))
    assert mgr.cp.throttle_wait_us == 0.0


def test_cp_throttle_fault_clamps_and_restores():
    env = Environment()
    plat = ElasticPlatform(env)
    plan = FaultPlan().cp_throttle(1_000.0, "worker0", ops_per_sec=50.0,
                                   duration_us=9_000.0)
    injector = FaultInjector(env, plat, plan)
    injector.start()
    cp = plat.fabric.control_plane("worker0")
    assert cp.ops_per_sec is None
    env.run(until=5_000.0)
    assert cp.ops_per_sec == 50.0
    env.run(until=20_000.0)
    assert cp.ops_per_sec == cp.config.ops_per_sec
    kinds = [kind for _, kind, _, _ in injector.timeline]
    assert kinds == ["cp-throttle", "cp-restore"]


# ---------------------------------------------------------------------------
# MR lifecycle
# ---------------------------------------------------------------------------

def test_hugepage_compaction_entry_count():
    env, cost, fabric = make_fabric()
    huge = fabric.control_plane("worker0", ControlPlaneConfig())
    four_mb = 4 * 1024 * 1024
    assert huge.entries_for(four_mb) == 2  # 2 MB pages
    assert huge.entries_for(1) == 1
    flat_cfg = ControlPlaneConfig(huge_pages=False)
    env2, cost2, fabric2 = make_fabric()
    small = fabric2.control_plane("worker0", flat_cfg)
    assert small.entries_for(four_mb) == 1024  # 4 KB pages
    assert small.entries_for(four_mb) == 512 * huge.entries_for(four_mb)


def test_register_region_cost_scales_with_entries():
    def charge(nbytes, huge_pages):
        env, cost, fabric = make_fabric()
        cp = fabric.control_plane(
            "worker0", ControlPlaneConfig(huge_pages=huge_pages))

        def body():
            yield from cp.register_region("t", nbytes)

        env.process(body())
        env.run()
        return env.now, cp

    small_t, _ = charge(4 * 1024 * 1024, huge_pages=True)
    big_t, cp = charge(4 * 1024 * 1024, huge_pages=False)
    assert big_t > small_t  # 1024 MTT entries vs 2
    assert cp.mr_registered_bytes == 4 * 1024 * 1024
    assert cp.mr_regions_registered == 1


def test_mr_handle_is_idempotent_and_releases():
    env, cost, fabric = make_fabric()
    cp = fabric.control_plane("worker0")
    handle = cp.mr_handle("t", 1 << 20)
    assert not handle.registered

    def body():
        yield from handle.acquire()
        first = env.now
        yield from handle.acquire()  # no second charge
        assert env.now == first

    env.process(body())
    env.run()
    assert handle.registered
    assert cp.mr_regions_registered == 1
    mrt = fabric.rnic("worker0").mrt
    registered = mrt.total_mtt_entries
    handle.release()
    assert not handle.registered
    assert mrt.total_mtt_entries < registered
    handle.release()  # idempotent


def test_lazy_policy_defers_eager_registers():
    env, cost, fabric = make_fabric()
    eager = fabric.control_plane("worker0", ControlPlaneConfig())
    assert eager.wants_eager_mr
    env2, cost2, fabric2 = make_fabric()
    lazy = fabric2.control_plane("worker0",
                                 ControlPlaneConfig(mr_policy="lazy"))
    assert not lazy.wants_eager_mr


# ---------------------------------------------------------------------------
# pre-warm policies
# ---------------------------------------------------------------------------

def test_fixed_floor_policy_target():
    policy = FixedFloorPrewarm(3)
    assert policy.active
    assert policy.target(0.0, 0, []) == 3
    assert policy.target(1e6, 10, [1.0] * 50) == 3


def test_predictive_policy_scales_with_recent_demand():
    policy = DemandPredictivePrewarm(window_us=1_000.0, headroom=2.0,
                                     floor=1, ceiling=4)
    assert policy.target(10_000.0, 0, []) == 1  # floor when idle
    recent = [9_500.0, 9_800.0]  # 2 cold connects in window * 2.0
    assert policy.target(10_000.0, 0, recent) == 4  # clamped to ceiling?
    policy = DemandPredictivePrewarm(window_us=1_000.0, headroom=1.5,
                                     floor=1, ceiling=32)
    assert policy.target(10_000.0, 0, recent) == 3  # ceil(2 * 1.5)
    stale = [1.0, 2.0]  # outside the window
    assert policy.target(10_000.0, 0, stale) == 1


def test_maintain_pools_tops_up_to_floor():
    env, cost, fabric = make_fabric()
    config = ControlPlaneConfig(prewarm="fixed", prewarm_floor=3)
    mgr = ConnectionManager(env, fabric, "worker0", cost, config=config)
    assert mgr.prewarm.active
    warmed = {}

    def body():
        # a cold connect creates the pool key (and demand history)
        yield from mgr.get_connection("worker1", "t")
        warmed["n"] = yield from mgr.maintain_pools()

    env.process(body())
    env.run()
    assert warmed["n"] == 2  # 1 cold + 2 pre-warmed = floor of 3
    assert mgr.pooled_count() == 3


def test_default_none_policy_keeps_maintenance_inert():
    env, cost, fabric = make_fabric()
    mgr = ConnectionManager(env, fabric, "worker0", cost)
    assert not mgr.prewarm.active

    def body():
        yield from mgr.get_connection("worker1", "t")
        n = yield from mgr.maintain_pools()
        assert n == 0

    env.process(body())
    env.run()
    assert mgr.pooled_count() == 1


# ---------------------------------------------------------------------------
# connection sharing scope
# ---------------------------------------------------------------------------

def test_tenant_scope_multiplexes_across_functions():
    env, cost, fabric = make_fabric()
    mgr = ConnectionManager(env, fabric, "worker0", cost)

    def body():
        a = yield from mgr.get_connection("worker1", "t", fn="fnA")
        b = yield from mgr.get_connection("worker1", "t", fn="fnB")
        assert a is b  # one tenant pool, both functions share it

    env.process(body())
    env.run()
    assert mgr.connections_established == 1


def test_function_scope_gives_private_pools():
    env, cost, fabric = make_fabric()
    config = ControlPlaneConfig(share_scope="function")
    mgr = ConnectionManager(env, fabric, "worker0", cost, config=config)

    def body():
        a = yield from mgr.get_connection("worker1", "t", fn="fnA")
        b = yield from mgr.get_connection("worker1", "t", fn="fnB")
        assert a is not b

    env.process(body())
    env.run()
    assert mgr.connections_established == 2
    # tenant-level accounting still sees both scopes
    assert mgr.tenant_active_count("t") == 2


# ---------------------------------------------------------------------------
# paid replica provisioning (two-phase deploy)
# ---------------------------------------------------------------------------

def test_provision_replica_pays_setup_and_publishes_late():
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1", pool_buffers=64))
    spec = FunctionSpec("svc", "t1", work_us=5)
    plat.deploy_service(spec, "worker1", replicas=1)
    plat.start()
    out = {}

    def body():
        instance, handle = yield from plat.provision_replica(
            spec, "worker0", state_bytes=1 << 20)
        out["instance"] = instance
        out["handle"] = handle
        out["t_done"] = env.now

    env.process(body())
    # the started platform's engine threads run forever; bound the run
    env.run(until=500_000.0)
    assert out["t_done"] > 0  # QP + MR setup took simulated time
    assert out["handle"].registered  # eager policy registered up front
    name = out["instance"].spec.name
    events = [e for e in plat.coordinator.events if e[1] == name]
    kinds = [e[0] for e in events]
    assert kinds.index("declared") < kinds.index("published")
    assert name not in plat.coordinator.unpublished
    assert name in plat.services["svc"].replicas
    # scale_in releases the provisioned region again
    mrt = plat.fabric.rnic("worker0").mrt
    entries = mrt.total_mtt_entries
    plat.scale_in("svc", name)
    assert mrt.total_mtt_entries < entries


def test_scale_out_remains_free_and_synchronous():
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1", pool_buffers=64))
    spec = FunctionSpec("svc", "t1", work_us=5)
    plat.deploy_service(spec, "worker1", replicas=1)
    instance = plat.scale_out(spec, "worker0")  # no generator, no time
    assert env.now == 0.0
    assert instance.spec.name in plat.services["svc"].replicas


# ---------------------------------------------------------------------------
# reconnect edge cases
# ---------------------------------------------------------------------------

def test_backoff_cap_saturates():
    env, cost, fabric = make_fabric()
    mgr = ConnectionManager(env, fabric, "worker0", cost,
                            reconnect_base_us=1_000.0,
                            reconnect_cap_us=4_000.0)
    mgr.peer_alive = lambda remote: False  # peer never comes back
    mgr.schedule_reconnect("worker1", "t")
    env.run(until=40_000.0)
    delays = mgr.backoff_delays[("worker1", "t")]
    assert delays[:3] == [1_000.0, 2_000.0, 4_000.0]
    assert len(delays) > 4
    assert all(d == 4_000.0 for d in delays[2:])  # capped, stays capped


def test_retry_budget_exhausts_mid_reconnect():
    env, cost, fabric = make_fabric()
    mgr = ConnectionManager(env, fabric, "worker0", cost,
                            reconnect_base_us=1_000.0,
                            reconnect_cap_us=2_000.0,
                            tenant_retry_budget=3)
    mgr.peer_alive = lambda remote: False
    proc = mgr.schedule_reconnect("worker1", "t")
    assert proc is not None
    env.run()
    # the loop ran until the budget was spent mid-flight, then stopped
    assert mgr.reconnect_attempts["t"] == 3
    assert mgr.budget_exhausted >= 1
    assert mgr.reconnects_succeeded == 0
    # and a fresh schedule for the same tenant is refused outright
    assert mgr.schedule_reconnect("worker1", "t") is None
    # even toward a different peer: the budget is per-tenant
    assert mgr.schedule_reconnect("worker0", "t") is None


def test_eviction_of_errored_qp_while_reconnect_scheduled():
    env, cost, fabric = make_fabric()
    mgr = ConnectionManager(env, fabric, "worker0", cost,
                            reconnect_base_us=1_000.0)
    alive = {"up": True}
    mgr.peer_alive = lambda remote: alive["up"]
    out = {}

    def body():
        yield from mgr.warm_up("worker1", "t", count=1)
        alive["up"] = False
        mgr.fail_connections(remote="worker1", tenant="t")
        proc = mgr.schedule_reconnect("worker1", "t")
        assert proc is not None
        # a second QP errors while the reconnect is already scheduled:
        # eviction still works, and no duplicate loop starts
        assert mgr.schedule_reconnect("worker1", "t") is None
        assert mgr.evict_errored() >= 1
        assert mgr.pooled_count() == 0
        yield env.timeout(5_000.0)
        alive["up"] = True  # peer recovers; the loop re-establishes
        out["scheduled"] = True

    env.process(body())
    env.run()
    assert out["scheduled"]
    assert mgr.reconnects_succeeded == 1
    assert mgr.pooled_count() == 1
    pooled = [qp for pool in mgr._pool.values() for qp in pool]
    assert all(qp.is_rts and not qp.is_errored for qp in pooled)
