"""Critical-path attribution: stage mapping, the deepest-active-span
sweep, report quantiles, and the dominant-stage shift.

The synthetic tests build tiny span forests on a fake clock and check
the attribution arithmetic exactly; the acceptance test runs a real
instrumented boutique point and requires >= 90% of the p99 latency to
land in *named* stages.
"""

import pytest

from repro.experiments import run_boutique_point
from repro.telemetry import CriticalPathReport, SpanTracer, analyze, dominant_shift
from repro.telemetry.critpath import stage_of


class FakeClock:
    def __init__(self):
        self.now = 0.0


def span_at(tracer, clock, name, start, end, parent=None, category=""):
    clock.now = start
    s = tracer.start_span(name, parent=parent, category=category)
    clock.now = end
    tracer.end_span(s)
    return s


@pytest.fixture
def clock_tracer():
    clock = FakeClock()
    return clock, SpanTracer(clock)


class TestStageOf:
    def test_known_prefixes(self, clock_tracer):
        clock, tracer = clock_tracer
        cases = [
            ("request:/home", "", "queueing"),
            ("invoke:cart", "", "queueing"),
            ("engine.tx", "", "engine.tx"),
            ("engine.rx", "", "engine.rx"),
            ("rdma.write", "", "rdma.send"),
            ("fn.exec:frontend", "", "fn.exec"),
            ("fn.invoke:cart", "", "fn.invoke"),
            ("iolib.send", "", "iolib"),
            ("gw.accept", "", "ingress"),
            ("migrate.state", "", "migration"),
        ]
        for name, category, stage in cases:
            s = span_at(tracer, clock, name, 0, 1, category=category)
            assert stage_of(s) == stage, name

    def test_category_fallbacks_and_other(self, clock_tracer):
        clock, tracer = clock_tracer
        assert stage_of(span_at(tracer, clock, "weird", 0, 1,
                                category="rdma")) == "rdma.send"
        assert stage_of(span_at(tracer, clock, "weird", 0, 1,
                                category="function")) == "fn.exec"
        assert stage_of(span_at(tracer, clock, "weird.thing", 0, 1,
                                category="custom")) == "other:custom"


class TestAttribution:
    def test_childless_root_is_pure_queueing(self, clock_tracer):
        clock, tracer = clock_tracer
        span_at(tracer, clock, "request:/x", 0.0, 50.0)
        report = analyze(tracer)
        assert len(report) == 1
        assert report.requests[0]["stages"] == {"queueing": 50.0}

    def test_gaps_around_a_child_are_queueing(self, clock_tracer):
        clock, tracer = clock_tracer
        clock.now = 0.0
        root = tracer.start_span("request:/x")
        span_at(tracer, clock, "fn.exec:f", 10.0, 30.0, parent=root)
        clock.now = 40.0
        tracer.end_span(root)
        stages = analyze(tracer).requests[0]["stages"]
        assert stages == {"queueing": 20.0, "fn.exec": 20.0}

    def test_child_outliving_its_parent_still_attributes(self, clock_tracer):
        # The causality-chain shape: rdma.send hands off to engine.rx
        # which outlives it, then fn.exec outlives that — each instant
        # must charge the deepest span active at that instant.
        clock, tracer = clock_tracer
        clock.now = 0.0
        root = tracer.start_span("request:/x")
        clock.now = 0.0
        rdma = tracer.start_span("rdma.send", parent=root)
        clock.now = 5.0
        rx = tracer.start_span("engine.rx", parent=rdma)
        clock.now = 6.0
        tracer.end_span(rdma)
        clock.now = 10.0
        fn = tracer.start_span("fn.exec:f", parent=rx)
        clock.now = 12.0
        tracer.end_span(rx)
        clock.now = 90.0
        tracer.end_span(fn)
        clock.now = 100.0
        tracer.end_span(root)
        stages = analyze(tracer).requests[0]["stages"]
        # 0-5 rdma (depth 1), 5-10 engine.rx (deeper than rdma in
        # 5-6), 10-90 fn.exec (deepest), 90-100 root self = queueing
        assert stages["rdma.send"] == pytest.approx(5.0)
        assert stages["engine.rx"] == pytest.approx(5.0)
        assert stages["fn.exec"] == pytest.approx(80.0)
        assert stages["queueing"] == pytest.approx(10.0)
        assert sum(stages.values()) == pytest.approx(100.0)

    def test_unfinished_children_are_ignored(self, clock_tracer):
        clock, tracer = clock_tracer
        clock.now = 0.0
        root = tracer.start_span("request:/x")
        clock.now = 2.0
        tracer.start_span("fn.exec:f", parent=root)  # never ended
        clock.now = 10.0
        tracer.end_span(root)
        stages = analyze(tracer).requests[0]["stages"]
        assert stages == {"queueing": 10.0}

    def test_unfinished_roots_and_foreign_roots_excluded(self, clock_tracer):
        clock, tracer = clock_tracer
        clock.now = 0.0
        tracer.start_span("request:/open")  # never finished
        span_at(tracer, clock, "gc.sweep", 0.0, 5.0)  # not a request
        span_at(tracer, clock, "request:/done", 0.0, 5.0)
        report = analyze(tracer)
        assert len(report) == 1
        assert report.requests[0]["name"] == "request:/done"

    def test_stage_totals_cover_every_request_exactly(self, clock_tracer):
        clock, tracer = clock_tracer
        for i in range(5):
            t0 = i * 100.0
            clock.now = t0
            root = tracer.start_span("request:/x")
            span_at(tracer, clock, "fn.exec:f", t0 + 1.0, t0 + 7.0,
                    parent=root)
            clock.now = t0 + 10.0
            tracer.end_span(root)
        for req in analyze(tracer).requests:
            assert sum(req["stages"].values()) == pytest.approx(
                req["total_us"])


class TestReport:
    def _report(self, totals):
        return CriticalPathReport([
            {"trace_id": i, "name": "request:/x", "total_us": t,
             "stages": {"fn.exec": t * 0.7, "queueing": t * 0.3}}
            for i, t in enumerate(totals)
        ])

    def test_quantile_request_picks_sorted_index(self):
        report = self._report([30.0, 10.0, 20.0, 40.0])
        assert report.quantile_request(0.0)["total_us"] == 10.0
        assert report.quantile_request(0.5)["total_us"] == 30.0
        assert report.quantile_request(1.0)["total_us"] == 40.0

    def test_empty_report_is_graceful(self):
        report = CriticalPathReport([])
        assert report.quantile_request(0.5) is None
        assert report.stage_shares(0.99) == {}
        assert report.dominant_stage() == ("", 0.0)
        assert report.named_coverage() == 0.0
        assert report.table() == []

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            self._report([1.0]).quantile_request(1.5)

    def test_named_coverage_excludes_other(self):
        report = CriticalPathReport([{
            "trace_id": 1, "name": "request:/x", "total_us": 10.0,
            "stages": {"fn.exec": 6.0, "other:gc": 4.0},
        }])
        assert report.named_coverage(0.99) == pytest.approx(0.6)

    def test_table_lists_stages_in_canonical_order(self):
        rows = self._report([10.0, 20.0]).table()
        assert [r["stage"] for r in rows] == ["queueing", "fn.exec"]
        assert rows[1]["p99_share"] == pytest.approx(0.7)
        assert rows[1]["mean_share"] == pytest.approx(0.7)

    def test_dominant_shift_flags_transitions(self):
        low = self._report([10.0])
        high = CriticalPathReport([{
            "trace_id": 1, "name": "request:/x", "total_us": 100.0,
            "stages": {"queueing": 80.0, "fn.exec": 20.0},
        }])
        rows = dominant_shift({"1x": low, "2x": low, "4x": high})
        assert [r["shifted"] for r in rows] == [False, False, True]
        assert rows[2]["dominant_stage"] == "queueing"


class TestBoutiqueAcceptance:
    @pytest.fixture(scope="class")
    def report(self):
        metrics = run_boutique_point(
            "palladium-dne", "Home Query", clients=4,
            duration_us=40_000.0, with_telemetry=True)
        return analyze(metrics["telemetry"].tracer)

    def test_named_stages_cover_90pct_of_p99(self, report):
        assert len(report) > 50
        assert report.named_coverage(0.99) >= 0.90

    def test_attribution_is_exhaustive(self, report):
        for req in report.requests:
            assert sum(req["stages"].values()) == pytest.approx(
                req["total_us"], rel=1e-9)

    def test_to_dict_is_json_safe_and_complete(self, report):
        import json
        d = json.loads(json.dumps(report.to_dict()))
        assert d["requests"] == len(report)
        assert d["p99_total_us"] >= d["p50_total_us"] > 0
        assert d["table"]
        stages = {row["stage"] for row in d["table"]}
        assert "fn.exec" in stages
