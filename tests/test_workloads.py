"""Tests for workloads: boutique, generators, traces."""

import pytest

from repro.config import SEC
from repro.platform import ServerlessPlatform, Tenant
from repro.sim import Environment
from repro.workloads import (
    BOUTIQUE_CHAINS,
    BOUTIQUE_FUNCTIONS,
    BOUTIQUE_PLACEMENT,
    BOUTIQUE_TENANT,
    CHAIN_PATHS,
    DirectDriver,
    TenantTrace,
    boutique_resolver,
    deploy_boutique,
    deploy_echo_pair,
    fig15_traces,
    path_payload,
)
from repro.workloads.boutique import boutique_specs


# ---------------------------------------------------------------------------
# Boutique model
# ---------------------------------------------------------------------------

def test_boutique_has_ten_functions():
    assert len(BOUTIQUE_FUNCTIONS) == 10
    assert len(boutique_specs()) == 10


def test_boutique_has_six_chains():
    assert len(BOUTIQUE_CHAINS) == 6


def test_eval_chains_exceed_eleven_exchanges():
    """The paper: each evaluated chain incurs >11 data exchanges."""
    for name in ("Home Query", "View Cart", "Product Query"):
        chain = next(c for c in BOUTIQUE_CHAINS if c.name == name)
        assert chain.exchange_count > 11


def test_placement_matches_paper():
    """Hotspots on one node, the remaining seven on the other (§4.3)."""
    hot = {fn for fn, node in BOUTIQUE_PLACEMENT.items() if node == "worker0"}
    assert hot == {"frontend", "checkout", "recommendation"}
    assert sum(1 for n in BOUTIQUE_PLACEMENT.values() if n == "worker1") == 7


def test_resolver_routes_to_frontend():
    assert boutique_resolver("/home") == (BOUTIQUE_TENANT, "frontend")
    assert boutique_resolver("/anything") == (BOUTIQUE_TENANT, "frontend")


def test_path_payload_ops():
    assert path_payload("/home") == {"op": "home"}
    assert path_payload("/viewcart") == {"op": "viewcart"}
    assert path_payload("/") == {"op": "home"}


def _boutique_platform(single_node=False):
    env = Environment()
    plat = ServerlessPlatform(env)
    plat.add_tenant(Tenant(BOUTIQUE_TENANT, pool_buffers=1024))
    deploy_boutique(plat, single_node=single_node)
    plat.start()
    return env, plat


@pytest.mark.parametrize("path", sorted(CHAIN_PATHS.values()))
def test_every_chain_completes(path):
    env, plat = _boutique_platform()
    frontend = plat.functions["frontend"]
    replies = []

    def body():
        yield env.timeout(60_000)
        reply = yield from frontend.invoke("frontend", path_payload(path), 256)
        replies.append(reply.payload)

    env.process(body())
    env.run(until=1_000_000)
    assert len(replies) == 1
    assert "error" not in (replies[0] or {})


def test_single_node_deployment():
    env, plat = _boutique_platform(single_node=True)
    for fn in BOUTIQUE_FUNCTIONS:
        assert plat.coordinator.node_of(fn) == "worker0"


def test_home_query_touches_expected_services():
    env, plat = _boutique_platform()

    def body():
        yield env.timeout(60_000)
        yield from plat.functions["frontend"].invoke(
            "frontend", path_payload("/home"), 256
        )

    env.process(body())
    env.run(until=1_000_000)
    for fn in ("currency", "productcatalog", "cart", "recommendation", "ad"):
        assert plat.functions[fn].handled >= 1, fn
    assert plat.functions["payment"].handled == 0  # not on the home path


def test_checkout_touches_payment_and_email():
    env, plat = _boutique_platform()

    def body():
        yield env.timeout(60_000)
        yield from plat.functions["frontend"].invoke(
            "frontend", path_payload("/checkout"), 256
        )

    env.process(body())
    env.run(until=1_000_000)
    for fn in ("checkout", "payment", "email", "shipping"):
        assert plat.functions[fn].handled >= 1, fn
    assert plat.functions["cart"].handled == 2  # GetCart + EmptyCart


# ---------------------------------------------------------------------------
# DirectDriver
# ---------------------------------------------------------------------------

def test_direct_driver_closed_loop():
    env = Environment()
    plat = ServerlessPlatform(env)
    client, server = deploy_echo_pair(plat)
    plat.start()
    driver = DirectDriver(env, client, server, size=128)

    def kickoff():
        yield env.timeout(30_000)
        yield from driver.run(max_requests=5)

    env.process(kickoff())
    env.run(until=500_000)
    assert driver.completed == 5
    assert driver.latency.count == 5


def test_direct_driver_stop():
    env = Environment()
    plat = ServerlessPlatform(env)
    client, server = deploy_echo_pair(plat)
    plat.start()
    driver = DirectDriver(env, client, server)

    def kickoff():
        yield env.timeout(30_000)
        yield from driver.run()

    def stopper():
        yield env.timeout(100_000)
        driver.stop()

    env.process(kickoff())
    env.process(stopper())
    env.run(until=300_000)
    assert driver.completed > 0


# ---------------------------------------------------------------------------
# Tenant traces (Fig. 15)
# ---------------------------------------------------------------------------

def test_fig15_traces_match_paper_windows():
    t1, t2, t3 = fig15_traces()
    assert t1.weight == 6 and t2.weight == 1 and t3.weight == 2
    # Tenant-1 active the whole 4 minutes
    assert t1.active(0) and t1.active(239 * SEC)
    # Tenant-2 joins at 20 s, exits at 3m20s
    assert not t2.active(19 * SEC) and t2.active(21 * SEC)
    assert not t2.active(201 * SEC)
    # Tenant-3 runs 1m30s - 2m30s
    assert not t3.active(89 * SEC) and t3.active(91 * SEC)
    assert not t3.active(151 * SEC)


def test_trace_surge_pattern():
    trace = TenantTrace("t", 1.0, 0.0, 100 * SEC, concurrency=10,
                        surge_period_us=10 * SEC, surge_duty=0.5,
                        baseline_fraction=0.2)
    assert trace.drivers_at(1 * SEC) == 10      # surge phase
    assert trace.drivers_at(6 * SEC) == 2       # trough
    assert trace.drivers_at(11 * SEC) == 10     # next period
    assert trace.drivers_at(200 * SEC) == 0     # outside window


def test_steady_trace_constant():
    trace = TenantTrace("t", 1.0, 0.0, 10 * SEC, concurrency=7)
    assert trace.drivers_at(5 * SEC) == 7


# ---------------------------------------------------------------------------
# Diurnal schedules
# ---------------------------------------------------------------------------

def test_rate_schedule_interpolates():
    from repro.workloads import RateSchedule
    sched = RateSchedule([(0, 100.0), (100, 200.0)])
    assert sched.rate_at(-5) == 100.0
    assert sched.rate_at(0) == 100.0
    assert sched.rate_at(50) == 150.0
    assert sched.rate_at(100) == 200.0
    assert sched.rate_at(500) == 200.0
    assert sched.peak == 200.0


def test_rate_schedule_validation():
    from repro.workloads import RateSchedule
    with pytest.raises(ValueError):
        RateSchedule([])
    with pytest.raises(ValueError):
        RateSchedule([(10, 1.0), (0, 2.0)])  # unsorted
    with pytest.raises(ValueError):
        RateSchedule([(0, -1.0)])


def test_diurnal_schedule_shape():
    from repro.workloads import diurnal_schedule
    sched = diurnal_schedule(1_000_000, base_rps=100, peak_rps=1000)
    assert sched.rate_at(0) == 100
    assert sched.rate_at(200_000) == 1000          # morning peak
    assert sched.rate_at(450_000) == pytest.approx(600)  # lunch dip
    assert sched.rate_at(999_999) == pytest.approx(100, rel=0.01)
    with pytest.raises(ValueError):
        diurnal_schedule(1000, base_rps=10, peak_rps=5)


def test_scheduled_source_follows_curve():
    from repro.ingress import PalladiumIngress
    from repro.workloads import OpenLoopSource, RateSchedule, ScheduledSource
    from repro.workloads import deploy_http_echo
    from repro.platform import ServerlessPlatform

    env = Environment()
    plat = ServerlessPlatform(env)
    resolver = deploy_http_echo(plat)
    ingress = PalladiumIngress(env, plat.cluster, plat.fabric, plat.cost,
                               resolver, min_workers=2)
    ingress.add_tenant("echo", buffers=512)
    plat.coordinator.subscribe(ingress.routes)
    plat.register_external(ingress.AGENT, "ingress")
    ingress.start()
    plat.start()
    source = OpenLoopSource(env, plat.cluster, ingress, rate_rps=1.0,
                            path="/echo")
    schedule = RateSchedule([(0, 5_000.0), (100_000, 40_000.0),
                             (200_000, 5_000.0)])
    driver = ScheduledSource(env, source, schedule)

    def kickoff():
        yield env.timeout(50_000)
        yield from driver.run()

    env.process(kickoff())
    env.run(until=300_000)
    # offered load tracked the bell curve: mid-window rate far above edges
    mid = source.throughput.rate(140_000, 170_000)
    edge = source.throughput.rate(60_000, 80_000)
    assert mid > edge * 2
    assert source.completed > 0


def test_scattered_placement_is_complete():
    from repro.workloads.boutique import BOUTIQUE_FUNCTIONS, scattered_placement
    placement = scattered_placement()
    assert set(placement) == set(BOUTIQUE_FUNCTIONS)
    assert placement["frontend"] == "worker0"
    # every frontend dependency is remote in the scattered layout
    for fn in ("currency", "productcatalog", "cart", "ad"):
        assert placement[fn] == "worker1"
