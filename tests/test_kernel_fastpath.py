"""Fast-path kernel tests: free-list recycling and steady-state
zero-allocation guarantees (docs/PERFORMANCE.md).

The scheduling hot path promises that steady-state churn — timeouts,
immediately-completed events, ``defer`` callbacks, store ping-pong —
reuses pooled objects instead of allocating.  These tests pin that
down two ways: object-identity reuse (the same ``Timeout`` instance
comes back from the free-list) and a tracemalloc diff over the sim
modules that must stay flat once the pools are warm.
"""

import gc
import tracemalloc

from repro.sim import Environment, Event, Store
from repro.sim import core as sim_core
from repro.sim import resources as sim_resources

SIM_FILES = (sim_core.__file__, sim_resources.__file__)


def _sim_growth(snap_before, snap_after) -> int:
    """Net bytes allocated in the sim modules between two snapshots."""
    stats = snap_after.compare_to(snap_before, "filename")
    return sum(s.size_diff for s in stats
               if s.traceback[0].filename in SIM_FILES)


def _steady_state_workload(env: Environment, rounds: int):
    """One process exercising every pooled shape."""
    store = Store(env, name="ss")

    def proc():
        for i in range(rounds):
            yield env.timeout(1.0)
            yield env.completed_event(i)
            env.defer(0.5, lambda: None)
            store.put_nowait(i)
            yield store.get()

    return env.process(proc(), name="steady")


class TestObjectReuse:
    def test_timeout_free_list_reuses_instances(self):
        env = Environment()
        seen = set()

        def proc():
            for _ in range(64):
                t = env.timeout(1.0)
                seen.add(id(t))
                yield t

        env.process(proc(), name="t")
        env.run()
        # With only one timeout in flight, the free-list serves the
        # same instance back every iteration after the first.
        assert len(seen) <= 2

    def test_completed_event_pool_reuses_instances(self):
        env = Environment()
        seen = set()

        def proc():
            for i in range(64):
                ev = env.completed_event(i)
                seen.add(id(ev))
                assert (yield ev) == i

        env.process(proc(), name="c")
        env.run()
        assert len(seen) <= 2

    def test_store_fast_path_get_reuses_instances(self):
        env = Environment()
        store = Store(env)
        seen = set()

        def proc():
            for i in range(64):
                store.put_nowait(i)
                ev = store.get()
                seen.add(id(ev))
                assert (yield ev) == i

        env.process(proc(), name="s")
        env.run()
        assert len(seen) <= 2

    def test_recycled_timeout_values_are_reset(self):
        env = Environment()
        values = []

        def proc():
            values.append((yield env.timeout(1.0, value="first")))
            # The recycled instance must not leak the previous value.
            values.append((yield env.timeout(1.0)))

        env.process(proc(), name="v")
        env.run()
        assert values == ["first", None]

    def test_held_event_is_not_recycled(self):
        env = Environment()
        held = []

        def proc():
            t = env.timeout(1.0, value="keep")
            held.append(t)  # an external reference pins the object
            yield t
            yield env.timeout(1.0)

        env.process(proc(), name="h")
        env.run()
        # The held timeout kept its identity and value; the kernel only
        # recycles events it exclusively owns (refcount-guarded).
        assert held[0].value == "keep"


class TestSteadyStateAllocation:
    def test_steady_state_loop_does_not_grow_sim_allocations(self):
        env = Environment()
        # Warm the free-lists and any lazy caches first.
        _steady_state_workload(env, 2_000)
        env.run()

        gc.collect()
        tracemalloc.start()
        snap1 = tracemalloc.take_snapshot()
        _steady_state_workload(env, 20_000)
        env.run()
        gc.collect()
        snap2 = tracemalloc.take_snapshot()
        tracemalloc.stop()

        growth = _sim_growth(snap1, snap2)
        # 20k rounds x (Timeout + completed event + defer + store get)
        # would be ~80k event objects without pooling (> 5 MB).  Steady
        # state must stay flat; allow a page of noise for caches.
        assert growth < 16_384, f"sim modules grew {growth} bytes"

    def test_event_base_class_is_not_pooled(self):
        # Only classes that opt in (_poolable) may be recycled: a plain
        # Event can carry user state and must keep its identity.
        assert Event._poolable is False
