"""Tests for the memory subsystem: buffers, pools, isolation, crossmap."""

import pytest

from repro.dataplane import Message
from repro.memory import (
    Buffer,
    BufferDescriptor,
    BufferState,
    CrossProcessorExporter,
    DESCRIPTOR_BYTES,
    IsolationError,
    MappingError,
    MemoryPool,
    OwnershipError,
    PoolExhausted,
    TenantMemoryRegistry,
    create_from_export,
)
from repro.sim import Environment


# ---------------------------------------------------------------------------
# Buffer ownership (the token-passing invariant, §3.5.1)
# ---------------------------------------------------------------------------

def test_owner_can_write_and_read():
    buf = Buffer(1024)
    buf.owner = "fn:a"
    buf.write("fn:a", "payload", 7)
    assert buf.read("fn:a") == "payload"
    assert buf.length == 7


def test_non_owner_read_rejected():
    buf = Buffer(1024)
    buf.owner = "fn:a"
    with pytest.raises(OwnershipError):
        buf.read("fn:b")


def test_non_owner_write_rejected():
    buf = Buffer(1024)
    buf.owner = "fn:a"
    with pytest.raises(OwnershipError):
        buf.write("fn:b", "x", 1)


def test_transfer_moves_ownership():
    buf = Buffer(64)
    buf.owner = "fn:a"
    buf.transfer("fn:a", "dne:w0")
    with pytest.raises(OwnershipError):
        buf.read("fn:a")
    buf.write("dne:w0", "ok", 2)


def test_transfer_by_non_owner_rejected():
    buf = Buffer(64)
    buf.owner = "fn:a"
    with pytest.raises(OwnershipError):
        buf.transfer("fn:b", "fn:c")


def test_write_beyond_capacity_rejected():
    buf = Buffer(16)
    buf.owner = "a"
    with pytest.raises(ValueError):
        buf.write("a", "x", 17)
    with pytest.raises(ValueError):
        buf.write("a", "x", -1)


def test_descriptor_wire_size():
    buf = Buffer(64)
    buf.owner = "a"
    buf.write("a", "p", 4)
    desc = buf.descriptor(dst="b")
    assert desc.wire_bytes == DESCRIPTOR_BYTES
    assert desc.length == 4
    assert desc.message.dst == "b"


def test_descriptor_derive_overrides():
    desc = BufferDescriptor(buffer=Buffer(8), length=1,
                            message=Message(src="a"))
    derived = desc.derive(dst="b")
    assert derived.message.src == "a" and derived.message.dst == "b"
    assert desc.message.dst == ""
    assert derived.message is not desc.message
    assert derived.buffer is desc.buffer


# ---------------------------------------------------------------------------
# MemoryPool
# ---------------------------------------------------------------------------

def _pool(count=4, size=1024):
    return MemoryPool(Environment(), "t", count, size)


def test_pool_validation():
    env = Environment()
    with pytest.raises(ValueError):
        MemoryPool(env, "t", 0, 8)
    with pytest.raises(ValueError):
        MemoryPool(env, "t", 8, 0)


def test_pool_get_assigns_ownership():
    pool = _pool()
    buf = pool.get("fn:a")
    assert buf.owner == "fn:a"
    assert buf.state == BufferState.IN_USE
    assert pool.free_count == 3


def test_pool_exhaustion_raises():
    pool = _pool(count=2)
    pool.get("a")
    pool.get("a")
    with pytest.raises(PoolExhausted):
        pool.get("a")


def test_pool_put_recycles():
    pool = _pool(count=1)
    buf = pool.get("a")
    pool.put(buf, "a")
    assert pool.free_count == 1
    again = pool.get("b")
    assert again is buf
    assert again.payload is None


def test_pool_put_by_non_owner_rejected():
    pool = _pool()
    buf = pool.get("a")
    with pytest.raises(OwnershipError):
        pool.put(buf, "b")


def test_pool_double_free_rejected():
    pool = _pool()
    buf = pool.get("a")
    pool.put(buf, "a")
    buf.owner = "a"  # forge ownership; state check must still catch it
    with pytest.raises(OwnershipError):
        pool.put(buf, "a")


def test_pool_put_foreign_buffer_rejected():
    pool_a = _pool()
    env = Environment()
    pool_b = MemoryPool(env, "t", 2, 64)
    foreign = pool_b.get("a")
    with pytest.raises(OwnershipError):
        pool_a.put(foreign, "a")


def test_pool_get_wait_blocks_until_put():
    env = Environment()
    pool = MemoryPool(env, "t", 1, 64)
    first = pool.get("a")
    got = []

    def waiter():
        buf = yield from pool.get_wait("b")
        got.append((env.now, buf.owner))

    def releaser():
        yield env.timeout(5)
        pool.put(first, "a")

    env.process(waiter())
    env.process(releaser())
    env.run()
    assert got == [(5.0, "b")]


def test_pool_hugepage_accounting():
    env = Environment()
    pool = MemoryPool(env, "t", 1024, 8192)  # 8 MB => 4 hugepages
    assert pool.hugepages == 4
    assert pool.mtt_entries == 4


def test_pool_counters():
    pool = _pool()
    buf = pool.get("a")
    pool.put(buf, "a")
    assert pool.gets == 1
    assert pool.puts == 1


# ---------------------------------------------------------------------------
# Tenant isolation (file prefixes, §3.4.1)
# ---------------------------------------------------------------------------

def test_registry_create_and_attach():
    reg = TenantMemoryRegistry(Environment())
    agent = reg.create_tenant_pool("t1", 8, 512)
    pool = reg.attach(agent.file_prefix, "t1")
    assert pool is agent.pool


def test_cross_tenant_attach_denied():
    reg = TenantMemoryRegistry(Environment())
    agent = reg.create_tenant_pool("t1", 8, 512)
    with pytest.raises(IsolationError):
        reg.attach(agent.file_prefix, "t2")


def test_unknown_prefix_rejected():
    reg = TenantMemoryRegistry(Environment())
    with pytest.raises(KeyError):
        reg.attach("nope", "t1")


def test_duplicate_prefix_rejected():
    reg = TenantMemoryRegistry(Environment())
    reg.create_tenant_pool("t1", 4, 64, file_prefix="p")
    with pytest.raises(ValueError):
        reg.create_tenant_pool("t2", 4, 64, file_prefix="p")


def test_duplicate_tenant_rejected():
    reg = TenantMemoryRegistry(Environment())
    reg.create_tenant_pool("t1", 4, 64)
    with pytest.raises(ValueError):
        reg.create_tenant_pool("t1", 4, 64, file_prefix="other")


def test_pool_lookup_by_tenant():
    reg = TenantMemoryRegistry(Environment())
    agent = reg.create_tenant_pool("t1", 4, 64)
    assert reg.pool_for("t1") is agent.pool
    assert reg.agent_for("t1") is agent
    assert reg.tenants == ["t1"]
    with pytest.raises(KeyError):
        reg.pool_for("t2")


def test_export_descriptor_contents():
    reg = TenantMemoryRegistry(Environment())
    agent = reg.create_tenant_pool("t1", 4, 2048)
    desc = agent.export_descriptor()
    assert desc["tenant"] == "t1"
    assert desc["buffer_bytes"] == 2048
    assert desc["buffer_count"] == 4


# ---------------------------------------------------------------------------
# Cross-processor shared memory (DOCA mmap, §3.4.2)
# ---------------------------------------------------------------------------

def _exported_pool(*grants):
    pool = MemoryPool(Environment(), "t", 4, 512)
    exporter = CrossProcessorExporter(pool)
    for grant in grants:
        getattr(exporter, f"export_{grant}")()
    return pool, exporter


def test_export_requires_grant():
    _, exporter = _exported_pool()
    with pytest.raises(MappingError):
        exporter.descriptor()


def test_remote_map_grants_enforced():
    pool, exporter = _exported_pool("pci")
    remote = create_from_export(exporter.descriptor())
    remote.require_pci()
    with pytest.raises(MappingError):
        remote.require_rdma()


def test_full_export_flow():
    pool, exporter = _exported_pool("pci", "rdma")
    remote = create_from_export(exporter.descriptor())
    remote.require_pci()
    remote.require_rdma()
    assert remote.pool is pool
    assert remote.tenant == "t"
