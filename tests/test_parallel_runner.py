"""Parallel experiment runner: deterministic in-order merge.

The contract (docs/PERFORMANCE.md): fanning a sweep's independent
points out over worker processes must be invisible in the output —
results merge in submission order and every point function is free of
process-global state, so serial and ``jobs=N`` runs are byte-identical
and simulation event counts match the seed exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.ext_overload import run_ext_overload
from repro.experiments.fig12_primitives import run_fig12
from repro.experiments.parallel import default_jobs, parallel_map
from repro.experiments.report import to_json
from repro.sim import Environment


def _affine(x, offset=0):
    return {"x": x, "y": 2 * x + offset}


@settings(max_examples=10, deadline=None)
@given(xs=st.lists(st.integers(-1_000, 1_000), max_size=12),
       jobs=st.integers(min_value=0, max_value=4))
def test_parallel_map_matches_serial_in_order(xs, jobs):
    calls = [((x,), {"offset": 7}) for x in xs]
    assert parallel_map(_affine, calls, jobs=jobs) == \
        parallel_map(_affine, calls, jobs=1)


def test_default_jobs_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert default_jobs() == 4


def _count_events(fn, *args, **kwargs):
    """Run ``fn`` summing events over every Environment it creates."""
    envs = []
    original_init = Environment.__init__

    def tracking_init(self, *a, **k):
        original_init(self, *a, **k)
        envs.append(self)

    Environment.__init__ = tracking_init
    try:
        result = fn(*args, **kwargs)
    finally:
        Environment.__init__ = original_init
    return result, sum(env.events_processed for env in envs)


class TestByteIdentity:
    def test_fig12_serial_vs_parallel(self):
        kwargs = dict(sizes=(64,), concurrency=2, duration_us=5_000.0)
        serial, events = _count_events(run_fig12, **kwargs)
        fanned = run_fig12(jobs=4, **kwargs)
        assert to_json(serial) == to_json(fanned)
        # Pinned to the seed kernel: the fast-path rewrite (free-lists,
        # flattened run loop) must not add, drop, or reorder events.
        assert events == 128_191

    def test_ext_overload_serial_vs_parallel(self):
        kwargs = dict(configs=("palladium-dne",), multipliers=(0.8, 2.0),
                      duration_us=20_000.0, warmup_us=15_000.0)
        serial = run_ext_overload(**kwargs)
        fanned = run_ext_overload(jobs=4, **kwargs)
        assert to_json(serial) == to_json(fanned)


@pytest.mark.parametrize("runs", [2])
def test_overload_point_free_of_process_global_state(runs):
    # Re-running the same point in one process must give the same
    # output a fresh process would: connection/request ids are scoped
    # per-environment, so RSS worker assignment cannot drift with
    # process history (the bug that once broke serial-vs-jobs merges).
    from repro.experiments.ext_overload import run_overload_point
    import json

    outs = [json.dumps(
        run_overload_point("palladium-dne", 0.8,
                           duration_us=20_000.0, warmup_us=15_000.0),
        sort_keys=True, default=str)
        for _ in range(runs)]
    assert len(set(outs)) == 1
